"""Training data loaders over the FanStore client (§VI-A, Figure 5).

Two I/O strategies, matching the paper's Figure 5:

- :class:`SyncLoader` — each ``next(batch)`` reads its files inline;
  I/O and compute serialize within the iteration.
- :class:`AsyncLoader` — a background prefetch thread keeps a bounded
  queue of decoded batches; iteration *i*'s read overlaps iteration
  *i−1*'s compute (what Keras/TF/PyTorch pipelines do).

Both present the same iterator protocol and the same *global view* with
deterministic per-epoch shuffling: every rank permutes the identical
file list with the epoch-seeded RNG and takes its rank-strided slice,
so batch membership is consistent across ranks — the property §III
identifies as key to preserving model accuracy.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass
from typing import Callable, Iterator, Sequence

import numpy as np

from repro.errors import ReproError
from repro.fanstore.client import FanStoreClient

#: decode callback: raw file bytes → a training sample (any object).
Decoder = Callable[[bytes, str], object]


def identity_decoder(data: bytes, _path: str) -> bytes:
    """The default decoder: hand raw file bytes straight through."""
    return data


@dataclass(frozen=True)
class Batch:
    """One rank's share of a global batch."""

    epoch: int
    iteration: int
    samples: list[object]
    paths: list[str]
    bytes_read: int

    def __len__(self) -> int:
        return len(self.samples)


def list_training_files(
    client: FanStoreClient, directory: str = ""
) -> list[str]:
    """Recursive, sorted enumeration through the metadata table — the
    startup scan of §II-B1, served entirely from RAM."""
    table = client.daemon.metadata
    files: list[str] = []

    def _walk(d: str) -> None:
        for name in client.listdir(d):
            path = f"{d}/{name}" if d else name
            if table.is_dir(path):
                _walk(path)
            else:
                files.append(path)

    _walk(directory.strip("/"))
    if not files:
        raise ReproError(f"no training files under {directory!r}")
    return files


class _EpochPlan:
    """Deterministic global shuffle + rank-strided sharding."""

    def __init__(
        self,
        files: Sequence[str],
        *,
        batch_size: int,
        rank: int,
        world_size: int,
        seed: int,
    ) -> None:
        if batch_size < 1:
            raise ReproError(f"batch_size must be >= 1, got {batch_size}")
        if not 0 <= rank < world_size:
            raise ReproError(f"rank {rank} outside [0, {world_size})")
        self.files = list(files)
        self.batch_size = batch_size
        self.rank = rank
        self.world_size = world_size
        self.seed = seed
        self.per_rank = max(batch_size // world_size, 1)
        self.iterations = len(self.files) // max(batch_size, 1)
        if self.iterations == 0:
            self.iterations = 1

    def rank_files(self, epoch: int, iteration: int) -> list[str]:
        """This rank's file paths for one (epoch, iteration)."""
        rng = np.random.default_rng(self.seed + epoch)
        order = rng.permutation(len(self.files))
        start = iteration * self.batch_size
        global_batch = [
            self.files[order[i % len(self.files)]]
            for i in range(start, start + self.batch_size)
        ]
        return global_batch[self.rank :: self.world_size][: self.per_rank]


class SyncLoader:
    """Figure 5(a): read the batch inside the iteration."""

    def __init__(
        self,
        client: FanStoreClient,
        files: Sequence[str],
        *,
        batch_size: int,
        epochs: int = 1,
        rank: int = 0,
        world_size: int = 1,
        seed: int = 0,
        decoder: Decoder = identity_decoder,
        metrics=None,
    ) -> None:
        self.client = client
        self.decoder = decoder
        self.epochs = epochs
        self.plan = _EpochPlan(
            files,
            batch_size=batch_size,
            rank=rank,
            world_size=world_size,
            seed=seed,
        )
        #: optional :class:`repro.obs.metrics.MetricsRegistry`: each
        #: batch load feeds ``loader.batch_seconds`` plus the
        #: ``loader.bytes_read``/``loader.batches`` counters (for the
        #: AsyncLoader these time the *producer* thread's reads, which
        #: is the quantity prefetching is supposed to hide).
        self._h_batch = self._c_bytes = self._c_batches = None
        if metrics is not None:
            self._h_batch = metrics.histogram("loader.batch_seconds")
            self._c_bytes = metrics.counter("loader.bytes_read")
            self._c_batches = metrics.counter("loader.batches")

    def _load(self, epoch: int, iteration: int) -> Batch:
        t0 = time.perf_counter()
        paths = self.plan.rank_files(epoch, iteration)
        samples = []
        nbytes = 0
        for p in paths:
            raw = self.client.read_file(p)
            nbytes += len(raw)
            samples.append(self.decoder(raw, p))
        if self._h_batch is not None:
            self._h_batch.observe(time.perf_counter() - t0)
            self._c_bytes.inc(nbytes)
            self._c_batches.inc()
        return Batch(
            epoch=epoch,
            iteration=iteration,
            samples=samples,
            paths=paths,
            bytes_read=nbytes,
        )

    def __iter__(self) -> Iterator[Batch]:
        for epoch in range(self.epochs):
            for it in range(self.plan.iterations):
                yield self._load(epoch, it)

    def __len__(self) -> int:
        return self.epochs * self.plan.iterations


class AsyncLoader(SyncLoader):
    """Figure 5(b): a prefetch thread reads batch *i+1* during compute
    of batch *i*. ``depth`` bounds the queue (default 2 = classic
    double buffering)."""

    def __init__(self, *args, depth: int = 2, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if depth < 1:
            raise ReproError(f"prefetch depth must be >= 1, got {depth}")
        self.depth = depth

    def __iter__(self) -> Iterator[Batch]:
        q: "queue.Queue[Batch | None | BaseException]" = queue.Queue(
            maxsize=self.depth
        )

        def _producer() -> None:
            try:
                for epoch in range(self.epochs):
                    for it in range(self.plan.iterations):
                        q.put(self._load(epoch, it))
            except BaseException as exc:  # surface in the consumer
                q.put(exc)
            else:
                q.put(None)

        thread = threading.Thread(
            target=_producer, name="fanstore-prefetch", daemon=True
        )
        thread.start()
        try:
            while True:
                item = q.get()
                if item is None:
                    break
                if isinstance(item, BaseException):
                    raise item
                yield item
        finally:
            thread.join(timeout=5.0)
