"""§V-E end-to-end: a node failure mid-training, relaunch at the same
scale, resume from the last epoch checkpoint, and converge to the exact
state an uninterrupted run reaches.

Two flavors of failure live here: a simulated one (a loader that raises
partway, taking the whole launch down) and the real chaos drill — a
rank killed by the fault-injection layer while its peers keep running,
abort fast on ``comm_timeout``, and a relaunched world resumes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.comm.chaos import ChaosWorld, FaultPlan
from repro.comm.launcher import ParallelFailure, run_parallel
from repro.errors import CommError
from repro.fanstore.daemon import TAG_DAEMON, DaemonConfig
from repro.fanstore.faults import CheckpointManager
from repro.fanstore.metadata import normalize
from repro.fanstore.store import FanStore
from repro.training.loader import SyncLoader, list_training_files
from repro.training.models import MLP
from repro.training.trainer import DataParallelTrainer, make_array_collate

FEATURES = 8
CLASSES = 2
NODES = 3


def decoder(raw: bytes, path: str):
    arr = np.frombuffer(raw[8 : 8 + FEATURES], dtype=np.uint8)
    features = arr.astype(np.float64) / 255.0
    return features, int(arr.sum()) % CLASSES


class _CrashAfterEpoch(Exception):
    pass


class _CrashingLoader:
    """A loader that simulates node failure entering a given epoch."""

    def __init__(self, inner, crash_after: int) -> None:
        self.inner = inner
        self.crash_after = crash_after

    def __iter__(self):
        for batch in self.inner:
            if batch.epoch > self.crash_after:
                raise _CrashAfterEpoch(f"node died at epoch {batch.epoch}")
            yield batch


def _make_trainer(fs, comm, ckpt_dir, epochs, crash_after=None,
                  comm_timeout=None):
    files = [p for p in list_training_files(fs.client) if p.startswith("cls")]
    loader = SyncLoader(
        fs.client, files, batch_size=6, epochs=epochs,
        rank=comm.rank, world_size=comm.size, seed=1, decoder=decoder,
    )
    if crash_after is not None:
        loader = _CrashingLoader(loader, crash_after)
    model = MLP([FEATURES, 6, CLASSES], seed=13)
    # Every rank points at the shared checkpoint directory — the trainer
    # itself restricts *saving* to rank 0, but all ranks must read the
    # same resume point (or their epoch counts diverge).
    return DataParallelTrainer(
        model,
        loader,
        make_array_collate((FEATURES,), CLASSES),
        comm=comm,
        lr=0.2,
        checkpoints=CheckpointManager(ckpt_dir),
        comm_timeout=comm_timeout,
    )


def test_crash_then_resume_matches_uninterrupted(prepared_dataset, tmp_path):
    epochs = 4
    ckpt_crash = tmp_path / "ckpt-crash"
    ckpt_clean = tmp_path / "ckpt-clean"

    # Reference: an uninterrupted run.
    def clean(comm):
        with FanStore(prepared_dataset, comm=comm) as fs:
            trainer = _make_trainer(fs, comm, ckpt_clean, epochs)
            trainer.train()
            return trainer.model.get_flat_params()

    reference = run_parallel(clean, NODES, timeout=120)[0]

    # Crashed run: rank 1 dies entering epoch 2 (epochs 0-1 completed
    # and checkpointed by rank 0).
    def crashing(comm):
        with FanStore(prepared_dataset, comm=comm) as fs:
            trainer = _make_trainer(
                fs, comm, ckpt_crash, epochs,
                crash_after=1 if comm.rank == 1 else None,
            )
            trainer.train()

    with pytest.raises(ParallelFailure) as exc_info:
        run_parallel(crashing, NODES, timeout=120)
    assert any(
        isinstance(e, _CrashAfterEpoch)
        for e in exc_info.value.errors.values()
    )

    # The shared FS holds the epoch-1 checkpoint (the §V-E resume point).
    mgr = CheckpointManager(ckpt_crash)
    assert mgr.latest() is not None
    assert mgr.latest().epoch == 1

    # Relaunch at the same scale and resume.
    def resumed(comm):
        with FanStore(prepared_dataset, comm=comm) as fs:
            trainer = _make_trainer(fs, comm, ckpt_crash, epochs)
            report = trainer.train(resume=True)
            return report.resumed_from_epoch, trainer.model.get_flat_params()

    results = run_parallel(resumed, NODES, timeout=120)
    for resumed_from, params in results:
        assert resumed_from == 1
        # deterministic loaders + averaged gradients ⇒ bit-identical
        # final state to the run that never crashed
        np.testing.assert_array_equal(params, reference)


# -- the real thing: a rank killed by the chaos layer --------------------

CHAOS_SEEDS = (101, 202, 303)
seeds = pytest.mark.parametrize(
    "seed", CHAOS_SEEDS, ids=[f"seed{s}" for s in CHAOS_SEEDS]
)

DEAD = 2
TOTAL_EPOCHS = 4
CRASH_AFTER = 2  # epochs completed (and checkpointed) before the kill
_TAG_DONE = 0x0D0E

#: tight budgets so a dead rank costs seconds, not default timeouts
FAST = dict(
    request_timeout=0.4,
    max_retries=1,
    retry_backoff_base=0.01,
    retry_backoff_max=0.05,
)


@pytest.fixture(scope="module")
def originals(raw_dataset_dir):
    """store path → raw bytes, for byte-identity assertions."""
    expected = {}
    train = raw_dataset_dir / "train"
    for p in sorted(train.rglob("*")):
        if p.is_file():
            expected[normalize(str(p.relative_to(train)))] = p.read_bytes()
    for p in sorted((raw_dataset_dir / "val").iterdir()):
        if p.is_file():
            expected[f"val/{p.name}"] = p.read_bytes()
    return expected


@pytest.fixture(scope="module")
def drill_reference_params(prepared_dataset, tmp_path_factory):
    """Final parameters of a clean, never-crashed TOTAL_EPOCHS run —
    the drill must land on exactly these."""
    ckpt = tmp_path_factory.mktemp("drill-ref-ckpt")

    def body(comm):
        config = DaemonConfig(**FAST)
        with FanStore(prepared_dataset, comm=comm, config=config) as fs:
            trainer = _make_trainer(fs, comm, ckpt, TOTAL_EPOCHS)
            report = trainer.train()
            assert report.epochs_completed == TOTAL_EPOCHS
            return trainer.model.get_flat_params()

    results = run_parallel(body, NODES, timeout=300)
    for r in results[1:]:
        np.testing.assert_array_equal(r, results[0])
    return results[0]


class TestChaosRecoveryDrill:
    """The acceptance drill: kill a rank mid-job under chaos, relaunch
    the world at the same size, resume from the latest checkpoint, and
    finish with byte-identical reads and bit-identical parameters."""

    @seeds
    def test_kill_relaunch_resume(
        self, seed, prepared_dataset, originals, drill_reference_params,
        tmp_path,
    ):
        ckpt_dir = tmp_path / "ckpt"
        config = DaemonConfig(**FAST)
        # light chaos while the healthy epochs train: a few delayed
        # daemon requests, well inside the request timeout
        plan = FaultPlan(seed).delay(0.02, tag=TAG_DAEMON, times=4)
        world = ChaosWorld(NODES, plan)

        # -- phase 1: train, crash, abort fast ---------------------------
        def phase1(comm):
            fs = FanStore(prepared_dataset, comm=comm, config=config)
            trainer = _make_trainer(fs, comm, ckpt_dir, CRASH_AFTER)
            report = trainer.train()
            assert report.epochs_completed == CRASH_AFTER
            comm.barrier()
            if comm.rank == 0:
                world.kill(DEAD)
            # the job pushes on for the remaining epochs, but one rank
            # is now a corpse: its own ops raise RankDeadError, and the
            # survivors' next allreduce must give up at comm_timeout
            resumed = _make_trainer(
                fs, comm, ckpt_dir, TOTAL_EPOCHS, comm_timeout=2.0
            )
            try:
                resumed.train(resume=True)
            except CommError:
                outcome = (
                    "died" if world.plan.is_dead(comm.rank) else "aborted"
                )
            else:
                outcome = "finished"  # must not happen with a corpse
            if outcome != "aborted":
                return outcome
            # survivors skip the collective shutdown barrier (it would
            # wait on the corpse); drain pairwise — each must keep
            # serving until the other is done too — then stop
            other = 1 - comm.rank
            comm.send("done", other, _TAG_DONE)
            comm.recv(other, _TAG_DONE, timeout=60)
            fs.daemon.stop()
            return outcome

        results = run_parallel(phase1, NODES, world=world, timeout=300)
        assert results[DEAD] == "died"
        assert results[0] == results[1] == "aborted"

        # the crash left exactly the healthy epochs' checkpoints — no
        # missing epoch, no corrupt payload, no stray tmp files
        mgr = CheckpointManager(ckpt_dir)
        assert mgr.epochs() == list(range(CRASH_AFTER))
        for epoch in mgr.epochs():
            assert mgr.load(epoch).payload["params"]
        assert list(ckpt_dir.glob("*.tmp")) == []

        # -- phase 2: relaunch at the same size and resume ---------------
        def phase2(comm):
            with FanStore(prepared_dataset, comm=comm, config=config) as fs:
                data = {
                    rec.path: fs.client.read_file(rec.path)
                    for rec in fs.daemon.metadata.walk_files()
                }
                assert data == originals  # byte-identical training reads
                trainer = _make_trainer(fs, comm, ckpt_dir, TOTAL_EPOCHS)
                report = trainer.train(resume=True)
                return (
                    report.resumed_from_epoch,
                    report.epochs_completed,
                    trainer.model.get_flat_params(),
                )

        results = run_parallel(phase2, NODES, timeout=300)
        for resumed_from, completed, params in results:
            assert resumed_from == CRASH_AFTER - 1
            assert completed == TOTAL_EPOCHS - CRASH_AFTER
            # bit-identical to the run that never crashed
            np.testing.assert_array_equal(params, drill_reference_params)

        # the relaunched job filled in the missing epochs' checkpoints
        assert mgr.epochs() == list(range(TOTAL_EPOCHS))
        assert list(ckpt_dir.glob("*.tmp")) == []


def test_resume_requires_same_checkpoint_payload(prepared_dataset, tmp_path):
    """A corrupted resume point must be detected, not silently used."""
    ckpt = tmp_path / "ckpt"
    mgr = CheckpointManager(ckpt)
    mgr.save(0, {"params": [0.0] * 3})  # wrong parameter count

    def body(comm):
        with FanStore(prepared_dataset, comm=comm) as fs:
            trainer = _make_trainer(fs, comm, ckpt, 2)
            trainer.train(resume=True)

    with pytest.raises(ParallelFailure):
        run_parallel(body, 2, timeout=60)
