"""The RAM metadata table: paths, directories, merging, locality."""

from __future__ import annotations

import pytest

from repro.errors import FanStoreError, FileNotFoundInStoreError
from repro.fanstore.layout import FileStat
from repro.fanstore.metadata import FileRecord, MetadataTable, normalize


def rec(path, home=0, size=10, **kwargs):
    return FileRecord(
        path=path,
        stat=FileStat(st_size=size, **kwargs),
        compressor_id=1,
        compressed_size=size // 2,
        home_rank=home,
        partition_id=0,
    )


class TestNormalize:
    @pytest.mark.parametrize(
        "raw,expected",
        [
            ("a/b/c", "a/b/c"),
            ("/a/b", "a/b"),
            ("a//b/./c", "a/b/c"),
            ("", ""),
            (".", ""),
            ("a\\b", "a/b"),
            ("a/b/../c", "a/c"),
        ],
    )
    def test_canonical(self, raw, expected):
        assert normalize(raw) == expected

    def test_escape_rejected(self):
        with pytest.raises(FanStoreError):
            normalize("../outside")


class TestInsertAndQuery:
    def test_insert_indexes_ancestors(self):
        table = MetadataTable()
        table.insert(rec("train/cat/img1.tif"))
        assert table.listdir("") == ["train"]
        assert table.listdir("train") == ["cat"]
        assert table.listdir("train/cat") == ["img1.tif"]

    def test_stat_file_vs_dir(self):
        table = MetadataTable()
        table.insert(rec("d/f", size=77))
        assert table.stat("d/f").st_size == 77
        dir_stat = table.stat("d")
        assert dir_stat.st_mode & 0o040000  # S_IFDIR

    def test_missing_raises_filenotfound(self):
        table = MetadataTable()
        with pytest.raises(FileNotFoundInStoreError):
            table.get("nope")
        with pytest.raises(FileNotFoundInStoreError):
            table.stat("nope")
        with pytest.raises(FileNotFoundInStoreError):
            table.listdir("nope")

    def test_filenotfound_is_oserror_compatible(self):
        """Intercepted callers catch builtin FileNotFoundError."""
        table = MetadataTable()
        with pytest.raises(FileNotFoundError):
            table.get("nope")

    def test_is_file_is_dir(self):
        table = MetadataTable()
        table.insert(rec("a/b"))
        assert table.is_file("a/b") and not table.is_dir("a/b")
        assert table.is_dir("a") and not table.is_file("a")
        assert table.is_dir("")

    def test_exists_and_contains(self):
        table = MetadataTable()
        table.insert(rec("x/y"))
        assert table.exists("x/y") and "x/y" in table
        assert table.exists("x")
        assert not table.exists("x/z")

    def test_root_file_insert_rejected(self):
        table = MetadataTable()
        with pytest.raises(FanStoreError):
            table.insert(rec(""))

    def test_replacement_updates(self):
        table = MetadataTable()
        table.insert(rec("f", size=10))
        table.insert(rec("f", size=20))
        assert table.get("f").stat.st_size == 20
        assert len(table) == 1


class TestLocalityAndMerge:
    def test_local_records_filter(self):
        table = MetadataTable()
        table.insert(rec("a", home=0))
        table.insert(rec("b", home=1))
        table.insert(rec("c", home=0))
        assert {r.path for r in table.local_records(0)} == {"a", "c"}

    def test_merge_adds_remote_records(self):
        table = MetadataTable()
        table.insert(rec("local", home=0))
        table.merge([rec("remote1", home=1), rec("remote2", home=2)])
        assert len(table) == 3
        assert table.get("remote1").home_rank == 1

    def test_merge_lowest_home_rank_wins(self):
        """Broadcast files exist on every rank; all nodes must agree on
        one deterministic owner."""
        table = MetadataTable()
        table.insert(rec("val/v0", home=2))
        table.merge([rec("val/v0", home=1)])
        assert table.get("val/v0").home_rank == 1
        table.merge([rec("val/v0", home=3)])
        assert table.get("val/v0").home_rank == 1

    def test_walk_files_sorted(self):
        table = MetadataTable()
        for p in ("z", "a/1", "m"):
            table.insert(rec(p))
        assert [r.path for r in table.walk_files()] == ["a/1", "m", "z"]

    def test_byte_totals(self):
        table = MetadataTable()
        table.insert(rec("a", size=100))
        table.insert(rec("b", size=60))
        assert table.total_original_bytes() == 160
        assert table.total_compressed_bytes() == 80


class TestReplicaSets:
    def test_add_unions_and_set_replaces(self):
        table = MetadataTable()
        table.insert(rec("a/x"))
        table.add_replica("a/x", 2)
        table.add_replica("a/x", 1)
        assert table.replica_ranks("a/x") == (1, 2)
        table.set_replicas("a/x", (0, 3))
        assert table.replica_ranks("a/x") == (0, 3)

    def test_set_replicas_empty_clears_the_entry(self):
        table = MetadataTable()
        table.insert(rec("a/x"))
        table.add_replica("a/x", 2)
        table.set_replicas("a/x", ())
        assert table.replica_ranks("a/x") == ()
        assert table.replica_count() == 0
