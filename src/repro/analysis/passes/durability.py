"""*durable-write*: store files are mutated only through the
atomic-apply helper.

A plain ``open(path, "wb")`` (or ``.write_bytes`` / a bare
``os.rename``) tears under a crash: a reader — or the next incarnation
of this very rank — can see half the bytes behind the final name, and
PR 2's integrity layer can only *detect* that, not roll it forward.
:mod:`repro.fanstore.journal` owns the one blessed mutation sequence
(tmp + fsync + rename + parent-dir fsync, with crash points on every
transition), so every write-mode ``open``, ``os.rename``/``os.replace``
and ``.write_bytes``/``.write_text`` inside ``repro/fanstore`` must
either live in that helper or carry a reasoned waiver (fault
*injectors* tear bytes on purpose, for example).

Read-mode opens are untouched, and ``str.replace``-style calls are out
of scope — only the ``os.`` spellings of rename/replace are claimed.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.core import Finding, LintPass, Project, SourceFile

#: literal mode strings that create or mutate the target
_WRITE_MODE_CHARS = ("w", "a", "x", "+")


def _write_mode(call: ast.Call) -> str | None:
    """The literal write mode of an ``open()`` call, else None."""
    mode_node: ast.expr | None = None
    if len(call.args) >= 2:
        mode_node = call.args[1]
    for kw in call.keywords:
        if kw.arg == "mode":
            mode_node = kw.value
    if mode_node is None:
        return None  # default "r": read-only
    if not (isinstance(mode_node, ast.Constant)
            and isinstance(mode_node.value, str)):
        return None  # dynamic mode: out of scope for a static pass
    mode = mode_node.value
    if any(c in mode for c in _WRITE_MODE_CHARS):
        return mode
    return None


def _describe(call: ast.Call) -> str | None:
    """Classify one call; None means not a raw store mutation."""
    fn = call.func
    if isinstance(fn, ast.Name):
        if fn.id == "open":
            mode = _write_mode(call)
            if mode is not None:
                return f"write-mode open(..., {mode!r})"
        return None
    if not isinstance(fn, ast.Attribute):
        return None
    base = fn.value.id if isinstance(fn.value, ast.Name) else None
    if base == "os" and fn.attr in ("rename", "replace"):
        return f"os.{fn.attr}"
    if fn.attr in ("write_bytes", "write_text"):
        return f".{fn.attr}"
    return None


class DurableWritePass(LintPass):
    rule = "durable-write"
    title = "store mutations go through the atomic-apply helper"

    def _scan(self, src: SourceFile) -> Iterable[Finding]:
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            what = _describe(node)
            if what is None:
                continue
            yield Finding(
                rule=self.rule,
                path=src.display,
                line=node.lineno,
                message=(
                    f"{what} mutates a store file without the "
                    "atomic-apply helper; use journal.atomic_replace / "
                    "journal.atomic_open (or waive with a reason)"
                ),
            )

    def run(self, project: Project) -> Iterable[Finding]:
        findings: list[Finding] = []
        for src in project.files:
            display = src.display.replace("\\", "/")
            if "fanstore/" not in display:
                continue
            findings.extend(self._scan(src))
        return findings
