"""End-to-end data integrity: digests at prepare time, manifest
validation, verify-on-read with self-repair, and the typed EIO-style
error when repair is impossible."""

from __future__ import annotations

import errno
import json
import shutil

import pytest

from repro.errors import (
    DataIntegrityError,
    FanStoreError,
    FormatError,
    ManifestError,
)
from repro.fanstore.corruption import corrupt_backend, corrupt_record
from repro.fanstore.daemon import DaemonConfig
from repro.fanstore.layout import (
    FLAG_HAS_DIGEST,
    FileStat,
    PartitionEntry,
    blob_crc32,
    entry_payload_ok,
    read_partition,
)
from repro.fanstore.prepare import (
    MANIFEST_NAME,
    MANIFEST_VERSION,
    PreparedDataset,
)
from repro.fanstore.store import FanStore


# -- digests recorded at prepare time -----------------------------------


class TestPreparedDigests:
    def test_every_record_carries_its_payload_digest(self, prepared_dataset):
        paths = prepared_dataset.partition_paths()
        paths.append(prepared_dataset.broadcast_path())
        for ppath in paths:
            for e in read_partition(ppath, with_data=True):
                assert e.stat.has_digest
                assert e.stat.crc32 == blob_crc32(e.data)
                assert entry_payload_ok(e)

    def test_manifest_records_partition_digests(self, prepared_dataset):
        digests = prepared_dataset.partition_digests
        assert set(digests) == set(prepared_dataset.partitions) | {
            prepared_dataset.broadcast
        }
        assert all(len(d) == 64 for d in digests.values())
        assert prepared_dataset.verify_partition_digests() == []

    def test_manifest_version_bumped_and_self_digested(self, prepared_dataset):
        manifest = json.loads(
            (prepared_dataset.root / MANIFEST_NAME).read_text()
        )
        assert manifest["version"] == MANIFEST_VERSION == 2
        assert len(manifest["manifest_sha256"]) == 64

    def test_partition_digest_detects_drift(self, prepared_dataset, tmp_path):
        bad = tmp_path / "bad"
        shutil.copytree(prepared_dataset.root, bad)
        name = prepared_dataset.partitions[0]
        raw = bytearray((bad / name).read_bytes())
        raw[-1] ^= 0x01
        (bad / name).write_bytes(bytes(raw))
        assert PreparedDataset.load(bad).verify_partition_digests() == [name]

    def test_digest_survives_stat_pack_roundtrip(self):
        stat = FileStat(st_size=10).with_digest(0xDEADBEEF)
        packed = stat.pack()
        assert len(packed) == 144
        back = FileStat.unpack(packed)
        assert back.has_digest and back.crc32 == 0xDEADBEEF

    def test_pre_digest_records_still_pass(self):
        # a record without FLAG_HAS_DIGEST never fails verification,
        # even when crc32 happens to be 0 (old partitions decode to 0)
        stat = FileStat(st_size=3)
        assert not stat.has_digest
        entry = PartitionEntry(
            path="a", compressor_id=0, stat=stat, compressed_size=3,
            data=b"abc",
        )
        assert entry_payload_ok(entry)


# -- manifest schema/digest validation ----------------------------------


class TestManifestValidation:
    @pytest.fixture()
    def manifest_copy(self, prepared_dataset, tmp_path):
        root = tmp_path / "copy"
        shutil.copytree(prepared_dataset.root, root)
        return root

    def _edit(self, root, mutate):
        path = root / MANIFEST_NAME
        manifest = json.loads(path.read_text())
        mutate(manifest)
        path.write_text(json.dumps(manifest))
        return root

    def test_truncated_manifest_is_manifest_error(self, manifest_copy):
        path = manifest_copy / MANIFEST_NAME
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        with pytest.raises(ManifestError):
            PreparedDataset.load(manifest_copy)

    def test_missing_key_is_manifest_error_not_keyerror(self, manifest_copy):
        self._edit(manifest_copy, lambda m: m.pop("num_files"))
        with pytest.raises(ManifestError) as exc_info:
            PreparedDataset.load(manifest_copy)
        assert not isinstance(exc_info.value, KeyError)
        assert "num_files" in str(exc_info.value)

    def test_wrong_type_is_manifest_error(self, manifest_copy):
        self._edit(
            manifest_copy, lambda m: m.__setitem__("partitions", "oops")
        )
        with pytest.raises(ManifestError):
            PreparedDataset.load(manifest_copy)

    def test_hand_edited_value_breaks_self_digest(self, manifest_copy):
        self._edit(
            manifest_copy, lambda m: m.__setitem__("num_files", 9999)
        )
        with pytest.raises(ManifestError, match="digest mismatch"):
            PreparedDataset.load(manifest_copy)

    def test_non_object_manifest_rejected(self, manifest_copy):
        (manifest_copy / MANIFEST_NAME).write_text("[1, 2, 3]")
        with pytest.raises(ManifestError):
            PreparedDataset.load(manifest_copy)

    def test_version_1_manifest_still_loads(self, manifest_copy):
        # strip the v2 fields entirely: the pre-digest format
        path = manifest_copy / MANIFEST_NAME
        manifest = json.loads(path.read_text())
        manifest["version"] = 1
        del manifest["manifest_sha256"]
        del manifest["partition_digests"]
        path.write_text(json.dumps(manifest))
        prepared = PreparedDataset.load(manifest_copy)
        assert prepared.partition_digests == {}
        assert prepared.num_files == 15

    def test_manifest_error_is_both_fanstore_and_format_error(self):
        assert issubclass(ManifestError, FanStoreError)
        assert issubclass(ManifestError, FormatError)


# -- verify-on-read + self-repair ---------------------------------------


class TestVerifyOnRead:
    def test_corrupt_staged_copy_heals_from_shared_fs(self, single_store):
        fs = single_store
        victim = sorted(r.path for r in fs.daemon.metadata.records())[0]
        good = fs.client.read_file(victim)
        corrupt_backend(fs.daemon.backend, victim, seed=1)
        assert fs.client.read_file(victim) == good
        assert fs.daemon.stats.corruption_detected == 1
        assert fs.daemon.stats.corruption_repaired == 1
        assert fs.daemon.stats.degraded_reads == 1
        # the healed copy is promoted: the next read is clean and local
        assert fs.client.read_file(victim) == good
        assert fs.daemon.stats.corruption_detected == 1

    def test_cached_plaintext_is_quarantined_on_repair(self, single_store):
        fs = single_store
        victim = sorted(r.path for r in fs.daemon.metadata.records())[0]
        fd = fs.client.open(victim)  # pins the decompressed entry
        corrupt_backend(fs.daemon.backend, victim, seed=2)
        fs.daemon.repair(victim)
        assert fs.daemon.cache.stats.quarantined == 1
        fs.client.close(fd)

    def test_verify_reads_off_serves_bytes_unchecked(self, prepared_dataset):
        config = DaemonConfig(verify_reads=False)
        with FanStore(prepared_dataset, config=config) as fs:
            victim = sorted(r.path for r in fs.daemon.metadata.records())[0]
            bad = corrupt_backend(fs.daemon.backend, victim, seed=3)
            assert fs.daemon.fetch_compressed(victim) == bad
            assert fs.daemon.stats.corruption_detected == 0

    def test_unrepairable_raises_typed_eio_naming_path(
        self, prepared_dataset, tmp_path
    ):
        bad_root = tmp_path / "bad"
        shutil.copytree(prepared_dataset.root, bad_root)
        prepared = PreparedDataset.load(bad_root)
        victim = read_partition(
            prepared.partition_paths()[0], with_data=False
        )[0].path
        # corrupt the payload inside the partition file *before* load:
        # the staged copy and the shared-FS floor are both bad
        corrupt_record(prepared, victim, seed=7)
        with FanStore(prepared) as fs:
            with pytest.raises(DataIntegrityError) as exc_info:
                fs.client.read_file(victim)
        err = exc_info.value
        assert isinstance(err, OSError)
        assert err.errno == errno.EIO
        assert err.filename == victim
        assert victim in str(err)

    def test_output_files_get_digests(self, single_store):
        fs = single_store
        fs.client.write_file("out/log.txt", b"epoch 0 done\n")
        record = fs.daemon.metadata.get("out/log.txt")
        assert record.has_digest
        # and the write-path digest is enforced on the read path
        corrupt_backend(fs.daemon.backend, "out/log.txt", seed=4)
        with pytest.raises(DataIntegrityError):
            # runtime outputs have no shared-FS floor to repair from
            fs.client.read_file("out/log.txt")


# -- every registered compressor refuses corrupt payloads ---------------


def _store_roundtrip_must_not_lie(daemon, name, payload):
    """Stage payload under compressor ``name`` with a digest, corrupt
    the staged bytes two ways, and require the read path to raise."""
    from repro.fanstore.metadata import FileRecord

    compressor = daemon.registry.get(name)
    packed = compressor.compress(payload)
    for variant, mangle in (
        ("bitflip", lambda b: bytes([b[0] ^ 0x10]) + b[1:]),
        ("truncated", lambda b: b[:-1] or b"\x00"),
    ):
        path = f"{name}/{variant}"
        stat = FileStat(st_size=len(payload)).with_digest(blob_crc32(packed))
        daemon.metadata.insert(FileRecord(
            path=path,
            stat=stat,
            compressor_id=compressor.compressor_id,
            compressed_size=len(packed),
            home_rank=0,
            partition_id=0,
        ))
        daemon.backend.put(path, mangle(packed))
        with pytest.raises(DataIntegrityError):
            daemon.open_file(path)


def test_all_registered_compressors_raise_on_corrupt_bytes(registry):
    """Corrupt compressed bytes must raise — never decompress into
    wrong plaintext — for every one of the registered configurations.
    The digest layer guarantees this uniformly: the check happens
    before any codec sees the bytes."""
    from repro.fanstore.daemon import FanStoreDaemon

    payload = (b"integrity is codec-independent. " * 64)
    daemon = FanStoreDaemon(registry=registry)
    for name in registry.names():
        _store_roundtrip_must_not_lie(daemon, name, payload)
