"""The Figure 1 node-count feasibility analysis.

The introduction frames the problem as three constraints on node count
*N* for a training job with dataset size \\|T\\|, per-node burst buffer
*M*, maximum useful batch size ``B_max`` and minimum per-processor batch
``b`` for full utilization:

- capacity:   ``N × M ≥ |T|``          (data must fit the buffers)
- efficiency: ``N × P × b ≤ B_max``    (every processor gets ≥ b samples)

When the capacity bound exceeds the efficiency bound, utilization
collapses (the paper's ResNet-50 example lands at <17 %); compression
shrinks \\|T\\| and moves the capacity bound left. These helpers compute
both bounds and the resulting utilization, and are exercised by the
quickstart example and the selection benchmarks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.cluster.node import MachineSpec
from repro.errors import SimulationError


@dataclass(frozen=True)
class PlacementAnalysis:
    """Outcome of the Figure 1 analysis for one job on one machine."""

    dataset_bytes: int
    compression_ratio: float
    min_nodes_capacity: int  # smallest N hosting the (compressed) data
    max_nodes_efficiency: int  # largest N with full per-processor batches
    chosen_nodes: int  # max(min_nodes_capacity, 1), capped at machine size
    utilization: float  # fraction of processors doing full-batch work

    @property
    def feasible_without_tradeoff(self) -> bool:
        """True when some node count satisfies both constraints."""
        return self.min_nodes_capacity <= self.max_nodes_efficiency


def min_nodes_for_data(
    dataset_bytes: int, node_buffer_bytes: int, compression_ratio: float = 1.0
) -> int:
    """Smallest node count whose aggregate buffers hold the dataset
    (``N ≥ |T| / (ratio × M)``)."""
    if dataset_bytes <= 0:
        raise SimulationError("dataset must be non-empty")
    if compression_ratio < 1.0:
        raise SimulationError(
            f"compression ratio must be >= 1, got {compression_ratio}"
        )
    effective = dataset_bytes / compression_ratio
    return max(1, math.ceil(effective / node_buffer_bytes))


def max_efficient_nodes(
    max_batch: int, processors_per_node: int, min_per_processor_batch: int
) -> int:
    """Largest node count at which every processor still receives at
    least ``b`` samples per iteration (``N ≤ B_max / (P × b)``)."""
    if min(max_batch, processors_per_node, min_per_processor_batch) < 1:
        raise SimulationError("batch/processor parameters must be >= 1")
    return max_batch // (processors_per_node * min_per_processor_batch)


def analyze_placement(
    machine: MachineSpec,
    dataset_bytes: int,
    *,
    max_batch: int,
    min_per_processor_batch: int,
    compression_ratio: float = 1.0,
) -> PlacementAnalysis:
    """Run the full Figure 1 analysis.

    ``utilization`` is the fraction of the chosen allocation's processors
    that can be fed a full ``b``-sample micro-batch: 1.0 when the batch
    covers them all, ``B_max/(b·P·N)`` once N exceeds the efficiency
    bound — reproducing the paper's <2/12 ≈ 17 % ResNet example.
    """
    n_cap = min_nodes_for_data(
        dataset_bytes, machine.node.burst_buffer_bytes, compression_ratio
    )
    n_eff = max_efficient_nodes(
        max_batch, machine.node.processors, min_per_processor_batch
    )
    chosen = min(max(n_cap, 1), machine.nodes)
    total_procs = chosen * machine.node.processors
    fed = min(total_procs, max_batch // min_per_processor_batch)
    utilization = fed / total_procs if total_procs else 0.0
    return PlacementAnalysis(
        dataset_bytes=dataset_bytes,
        compression_ratio=compression_ratio,
        min_nodes_capacity=n_cap,
        max_nodes_efficiency=max(n_eff, 0),
        chosen_nodes=chosen,
        utilization=utilization,
    )
