"""Ablation — cache policy (§IV-C3's design choice).

The paper chooses release-at-refcount-zero FIFO on the argument that DL
access is uniform (every file equally likely per epoch), so retention
buys almost nothing while costing RAM. This ablation measures exactly
that: hit rates and resident memory of the paper policy vs a retaining
FIFO vs an oracle upper bound, under a uniform-epoch access trace.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.report import PaperComparison
from repro.fanstore.cache import DecompressedCache

FILES = 64
FILE_BYTES = 4_096
EPOCHS = 3


def _run_policy(retain: bool, capacity_fraction: float) -> tuple[float, int]:
    """Simulate epochs of uniform access; returns (hit rate, peak bytes)."""
    cache = DecompressedCache(
        max(int(FILES * FILE_BYTES * capacity_fraction), FILE_BYTES),
        retain_unpinned=retain,
    )
    rng = np.random.default_rng(0)
    peak = 0
    payload = bytes(FILE_BYTES)
    for _ in range(EPOCHS):
        order = rng.permutation(FILES)
        for idx in order:
            path = f"f{idx}"
            if cache.open(path) is None:
                cache.insert(path, payload)
            peak = max(peak, cache.resident_bytes)
            cache.close(path)
    return cache.stats.hit_rate, peak


def test_ablation_cache_policy(benchmark, emit_report):
    results = benchmark.pedantic(
        lambda: {
            "paper (release at zero)": _run_policy(False, 0.5),
            "retain, 25% capacity": _run_policy(True, 0.25),
            "retain, 50% capacity": _run_policy(True, 0.5),
            "retain, 100% capacity": _run_policy(True, 1.0),
        },
        rounds=1,
        iterations=1,
    )

    report = PaperComparison(
        "Ablation (cache policy)",
        "hit rate vs peak RAM under uniform per-epoch access",
        columns=["policy", "hit rate", "peak bytes"],
    )
    for name, (hit, peak) in results.items():
        report.add_row(name, f"{hit:.1%}", peak)
    report.add_note(
        "uniform access makes partial retention nearly worthless "
        "(hit rate ≈ capacity fraction) while holding RAM — the paper's "
        "minimum-RAM argument"
    )
    emit_report(report)

    paper_hit, paper_peak = results["paper (release at zero)"]
    retain50_hit, retain50_peak = results["retain, 50% capacity"]
    retain100_hit, _ = results["retain, 100% capacity"]

    # The paper policy holds at most one file at a time here.
    assert paper_peak == FILE_BYTES
    assert paper_hit == 0.0
    # Partial retention thrashes on permutation scans: FIFO usually
    # evicts a file before its next epoch's access, so the hit rate
    # lands far below the capacity fraction — uniform access leaves no
    # locality to exploit, which is the paper's point.
    assert retain50_hit < 0.35
    assert retain50_peak > 10 * paper_peak
    # Only full retention wins outright — at full dataset RAM cost.
    assert retain100_hit > 0.6