"""The data-preparation tool (§V-B): partitioning, manifest, CLI."""

from __future__ import annotations

import json

import pytest

from repro.errors import FormatError
from repro.fanstore.layout import read_partition
from repro.fanstore.prepare import (
    MANIFEST_NAME,
    PreparedDataset,
    main,
    prepare_dataset,
)


@pytest.fixture()
def raw_dir(tmp_path):
    d = tmp_path / "raw"
    for sub, n in (("cat", 4), ("dog", 3)):
        (d / sub).mkdir(parents=True)
        for i in range(n):
            (d / sub / f"{sub}{i}.bin").write_bytes(
                f"{sub}-{i}-".encode() * 50
            )
    return d


class TestPrepare:
    def test_round_robin_partitioning(self, raw_dir, tmp_path):
        prep = prepare_dataset(raw_dir, tmp_path / "out", num_partitions=3,
                               threads=1)
        assert prep.num_files == 7
        assert len(prep.partitions) == 3
        counts = [
            len(read_partition(p)) for p in prep.partition_paths()
        ]
        assert counts == [3, 2, 2]  # 7 files round-robin over 3

    def test_paths_are_relative_to_data_dir(self, raw_dir, tmp_path):
        prep = prepare_dataset(raw_dir, tmp_path / "out", threads=1)
        entries = read_partition(prep.partition_paths()[0])
        assert all(
            e.path.startswith(("cat/", "dog/")) for e in entries
        )

    def test_compression_applied_and_recorded(self, raw_dir, tmp_path):
        prep = prepare_dataset(
            raw_dir, tmp_path / "out", compressor="zlib-6", threads=1
        )
        assert prep.ratio > 2.0  # repetitive content compresses
        entries = read_partition(prep.partition_paths()[0])
        assert all(e.compressor_id != 0 for e in entries)
        assert all(e.compressed_size < e.stat.st_size for e in entries)

    def test_incompressible_files_stored_raw(self, tmp_path):
        import os

        d = tmp_path / "rand"
        d.mkdir()
        (d / "noise.bin").write_bytes(os.urandom(4096))
        prep = prepare_dataset(d, tmp_path / "out", compressor="zlib-9",
                               threads=1)
        entry = read_partition(prep.partition_paths()[0])[0]
        assert entry.compressor_id == 0  # RAW_ID: compression didn't pay
        assert entry.compressed_size == entry.stat.st_size

    def test_original_size_in_stat(self, raw_dir, tmp_path):
        prep = prepare_dataset(raw_dir, tmp_path / "out", threads=1)
        for p in prep.partition_paths():
            for e in read_partition(p):
                assert e.stat.st_size > 0

    def test_broadcast_partition_flagged(self, raw_dir, tmp_path):
        val = tmp_path / "val"
        val.mkdir()
        (val / "v0.bin").write_bytes(b"validation" * 20)
        prep = prepare_dataset(
            raw_dir, tmp_path / "out", broadcast_dir=val, threads=1
        )
        assert prep.broadcast is not None
        bentries = read_partition(prep.broadcast_path())
        assert all(e.stat.is_broadcast for e in bentries)
        assert bentries[0].path.startswith("val/")

    def test_multithreaded_matches_single(self, raw_dir, tmp_path):
        p1 = prepare_dataset(raw_dir, tmp_path / "o1", threads=1)
        p4 = prepare_dataset(raw_dir, tmp_path / "o4", threads=4)
        e1 = read_partition(p1.partition_paths()[0])
        e4 = read_partition(p4.partition_paths()[0])
        assert [(e.path, e.data) for e in e1] == [(e.path, e.data) for e in e4]

    def test_unknown_compressor_fails_fast(self, raw_dir, tmp_path):
        from repro.errors import UnknownCompressorError

        with pytest.raises(UnknownCompressorError):
            prepare_dataset(raw_dir, tmp_path / "out", compressor="nope")

    def test_empty_dir_rejected(self, tmp_path):
        empty = tmp_path / "empty"
        empty.mkdir()
        with pytest.raises(FormatError):
            prepare_dataset(empty, tmp_path / "out")

    def test_bad_partition_count_rejected(self, raw_dir, tmp_path):
        with pytest.raises(FormatError):
            prepare_dataset(raw_dir, tmp_path / "out", num_partitions=0)


class TestManifest:
    def test_manifest_written_and_loadable(self, raw_dir, tmp_path):
        out = tmp_path / "out"
        prep = prepare_dataset(raw_dir, out, num_partitions=2, threads=1)
        loaded = PreparedDataset.load(out)
        assert loaded.partitions == prep.partitions
        assert loaded.num_files == prep.num_files
        assert loaded.compressor == prep.compressor
        assert loaded.ratio == pytest.approx(prep.ratio)

    def test_missing_manifest_raises(self, tmp_path):
        with pytest.raises(FormatError):
            PreparedDataset.load(tmp_path)

    def test_version_check(self, raw_dir, tmp_path):
        out = tmp_path / "out"
        prepare_dataset(raw_dir, out, threads=1)
        manifest = json.loads((out / MANIFEST_NAME).read_text())
        manifest["version"] = 999
        (out / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(FormatError):
            PreparedDataset.load(out)


class TestCli:
    def test_main(self, raw_dir, tmp_path, capsys):
        rc = main(
            [
                str(raw_dir),
                str(tmp_path / "out"),
                "-p",
                "2",
                "-c",
                "zlib-1",
                "-t",
                "2",
            ]
        )
        assert rc == 0
        assert "packed 7 files" in capsys.readouterr().out
        assert (tmp_path / "out" / MANIFEST_NAME).exists()


class TestAutoSelection:
    def test_auto_picks_per_file(self, tmp_path):
        import os

        d = tmp_path / "mixed"
        d.mkdir()
        (d / "text.txt").write_bytes(b"the same words again and again " * 200)
        (d / "noise.bin").write_bytes(os.urandom(3000))
        prep = prepare_dataset(d, tmp_path / "out", compressor="auto",
                               threads=1)
        entries = read_partition(prep.partition_paths()[0])
        by_name = {e.path: e for e in entries}
        assert by_name["noise.bin"].compressor_id == 0  # stored raw
        assert by_name["text.txt"].compressor_id != 0
        assert by_name["text.txt"].compressed_size < 600

    def test_auto_never_worse_than_single_codec(self, raw_dir, tmp_path):
        auto = prepare_dataset(raw_dir, tmp_path / "auto",
                               compressor="auto", threads=1)
        fixed = prepare_dataset(raw_dir, tmp_path / "fixed",
                                compressor="zlib-6", threads=1)
        assert auto.compressed_bytes <= fixed.compressed_bytes

    def test_auto_roundtrips_through_store(self, raw_dir, tmp_path):
        from repro.fanstore.store import FanStore

        prep = prepare_dataset(raw_dir, tmp_path / "out",
                               compressor="auto", threads=2)
        with FanStore(prep) as fs:
            assert fs.verify_integrity() == prep.num_files
