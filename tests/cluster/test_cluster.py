"""Machine presets and the Figure 1 placement analysis."""

from __future__ import annotations

import pytest

from repro.cluster.machines import MACHINES, cpu, get_machine, gtx, v100
from repro.cluster.node import MachineSpec, NodeSpec
from repro.cluster.placement import (
    analyze_placement,
    max_efficient_nodes,
    min_nodes_for_data,
)
from repro.errors import SimulationError
from repro.util.units import GB


class TestPresets:
    def test_paper_platforms(self):
        g = gtx()
        assert (g.nodes, g.node.processors) == (16, 4)
        assert g.node.burst_buffer_bytes == 60 * GB
        assert g.node.arch == "skx"
        v = v100()
        assert (v.nodes, v.node.processors) == (4, 4)
        assert v.node.arch == "power9"
        c = cpu()
        assert c.nodes == 512
        assert c.interconnect.name == "opa"

    def test_totals(self):
        assert gtx().total_processors == 64
        assert cpu().total_burst_buffer_bytes == 512 * 144 * GB

    def test_get_machine_case_insensitive(self):
        assert get_machine("gtx").name == "GTX"
        with pytest.raises(KeyError):
            get_machine("summit")
        assert set(MACHINES) == {"GTX", "V100", "CPU"}

    def test_subset(self):
        sub = gtx().subset(4)
        assert sub.nodes == 4
        assert sub.node == gtx().node
        with pytest.raises(SimulationError):
            gtx().subset(17)

    def test_node_validation(self):
        with pytest.raises(SimulationError):
            NodeSpec("bad", processors=0, processor_name="x",
                     burst_buffer_bytes=1, storage=gtx().node.storage)
        with pytest.raises(SimulationError):
            MachineSpec("bad", nodes=0, node=gtx().node,
                        interconnect=gtx().interconnect)


class TestFigure1Analysis:
    def test_paper_resnet_example(self):
        """The intro's worked example: 140 GB ImageNet, 60 GB/node,
        batch 256, 4 GPUs/node, b=128 ⇒ 3 nodes to host the data but
        ≤ 2 GPUs fully fed ⇒ ~17 % efficiency."""
        machine = gtx().subset(16)
        analysis = analyze_placement(
            machine,
            140 * GB,
            max_batch=256,
            min_per_processor_batch=128,
        )
        assert analysis.min_nodes_capacity == 3
        assert analysis.chosen_nodes == 3
        assert analysis.utilization == pytest.approx(2 / 12, abs=0.01)
        assert not analysis.feasible_without_tradeoff

    def test_compression_moves_the_bound(self):
        """Compression at 2.4× shrinks 140 GB under one node's worth of
        neighbors: min nodes drops from 3 to 1 and utilization recovers."""
        machine = gtx()
        packed = analyze_placement(
            machine,
            140 * GB,
            max_batch=256,
            min_per_processor_batch=128,
            compression_ratio=2.4,
        )
        assert packed.min_nodes_capacity == 1
        assert packed.utilization > 0.4

    def test_min_nodes_formula(self):
        assert min_nodes_for_data(100 * GB, 60 * GB) == 2
        assert min_nodes_for_data(100 * GB, 60 * GB, 2.0) == 1
        with pytest.raises(SimulationError):
            min_nodes_for_data(0, 60 * GB)
        with pytest.raises(SimulationError):
            min_nodes_for_data(1, 1, compression_ratio=0.5)

    def test_max_efficient_nodes_formula(self):
        assert max_efficient_nodes(256, 4, 32) == 2
        assert max_efficient_nodes(256, 4, 128) == 0
        with pytest.raises(SimulationError):
            max_efficient_nodes(0, 4, 32)

    def test_feasible_case(self):
        analysis = analyze_placement(
            gtx(), 30 * GB, max_batch=1024, min_per_processor_batch=8
        )
        assert analysis.feasible_without_tradeoff
        assert analysis.utilization == 1.0
