"""deadline-propagation: blocking fanstore comm calls must state a
timeout at the call site (explicit None included — it is a decision,
not a default)."""

from __future__ import annotations

import textwrap

from tests.analysis.conftest import rules_of

RULE = "deadline-propagation"

CLEAN = textwrap.dedent(
    """
    TAG_DAEMON = 0x0FA0

    class Daemon:
        def _serve(self):
            # explicit None: block-forever on purpose
            msg = self.comm.recv_with_status(-1, TAG_DAEMON, timeout=None)
            return msg

        def _request(self, dest, reply_tag, budget):
            return self.comm.recv(dest, reply_tag, budget)

        def load(self):
            self.comm.allgather(self.records, timeout=60.0)
            self.comm.barrier(60.0)
    """
)


class TestDeadlinePropagation:
    def test_explicit_timeouts_are_clean(self, lint_tree):
        report = lint_tree({"fanstore/daemon.py": CLEAN})
        assert not rules_of(report, RULE), report.summary()

    def test_recv_without_timeout_flagged(self, lint_tree):
        src = CLEAN.replace(
            "self.comm.recv(dest, reply_tag, budget)",
            "self.comm.recv(dest, reply_tag)",
        )
        report = lint_tree({"fanstore/daemon.py": src})
        findings = rules_of(report, RULE)
        assert len(findings) == 1
        assert ".recv()" in findings[0].message
        assert "deadline" in findings[0].message

    def test_bare_collectives_flagged(self, lint_tree):
        src = CLEAN.replace(
            "self.comm.allgather(self.records, timeout=60.0)",
            "self.comm.allgather(self.records)",
        ).replace("self.comm.barrier(60.0)", "self.comm.barrier()")
        report = lint_tree({"fanstore/daemon.py": src})
        findings = rules_of(report, RULE)
        assert len(findings) == 2
        assert any(".allgather()" in f.message for f in findings)
        assert any(".barrier()" in f.message for f in findings)

    def test_outside_fanstore_not_scoped(self, lint_tree):
        src = CLEAN.replace(
            "self.comm.recv(dest, reply_tag, budget)",
            "self.comm.recv(dest, reply_tag)",
        )
        report = lint_tree({"comm/helper.py": src})
        assert not rules_of(report, RULE), report.summary()

    def test_nonblocking_calls_exempt(self, lint_tree):
        src = CLEAN + textwrap.dedent(
            """
            class Poller:
                def drain(self):
                    self.comm.send(("fetch", "p"), 0, TAG_DAEMON)
                    return self.comm.try_recv(-1, TAG_DAEMON)
            """
        )
        report = lint_tree({"fanstore/daemon.py": src})
        assert not rules_of(report, RULE), report.summary()

    def test_waiver_applies(self, lint_tree):
        src = CLEAN + textwrap.dedent(
            """
            class Sidecar:
                def wait_forever(self):
                    # lint: allow[deadline-propagation] control plane, not hot path
                    return self.comm.recv(0, TAG_DAEMON)
            """
        )
        report = lint_tree({"fanstore/daemon.py": src})
        findings = rules_of(report, RULE)
        assert len(findings) == 1 and findings[0].waived


ENVELOPE = textwrap.dedent(
    """
    TAG_DAEMON = 0x0FA0

    class Daemon:
        def _request(self, dest, reply_tag, budget):
            wire_body = Request(
                subject="p",
                reply_tag=reply_tag,
                deadline=self._clock() + budget,
                epoch=self._fence_token(),
            ).encode()
            self.comm.send(("fetch", wire_body), dest, TAG_DAEMON)
            return self.comm.recv(dest, reply_tag, budget)
    """
)


class TestEnvelopeDeadlines:
    """A Request envelope must state its expiry at the build site."""

    def test_deadlined_envelope_is_clean(self, lint_tree):
        report = lint_tree({"fanstore/daemon.py": ENVELOPE})
        assert not rules_of(report, RULE), report.summary()

    def test_explicit_none_is_a_visible_decision(self, lint_tree):
        src = ENVELOPE.replace(
            "deadline=self._clock() + budget,", "deadline=None,"
        )
        report = lint_tree({"fanstore/daemon.py": src})
        assert not rules_of(report, RULE), report.summary()

    def test_undeadlined_envelope_flagged(self, lint_tree):
        src = ENVELOPE.replace(
            "            deadline=self._clock() + budget,\n", ""
        )
        report = lint_tree({"fanstore/daemon.py": src})
        findings = rules_of(report, RULE)
        assert len(findings) == 1
        assert "Request envelope" in findings[0].message
        assert "deadline=" in findings[0].message

    def test_kwargs_splat_gets_benefit_of_the_doubt(self, lint_tree):
        src = ENVELOPE.replace(
            "deadline=self._clock() + budget,", "**self._wire_kwargs,"
        )
        report = lint_tree({"fanstore/daemon.py": src})
        assert not rules_of(report, RULE), report.summary()

    def test_outside_fanstore_not_scoped(self, lint_tree):
        src = ENVELOPE.replace(
            "            deadline=self._clock() + budget,\n", ""
        )
        report = lint_tree({"comm/helper.py": src})
        assert not rules_of(report, RULE), report.summary()
