"""docs/observability.md is the metric-name contract: every name the
runtime registers must appear in the catalogue (placeholders like
``<codec>`` match any concrete segment)."""

from __future__ import annotations

import re
from pathlib import Path

import numpy as np
import pytest

from repro.comm.launcher import run_parallel
from repro.fanstore.daemon import DaemonConfig
from repro.fanstore.store import FanStore, FanStoreOptions
from repro.obs import MetricsRegistry
from repro.training.loader import SyncLoader, list_training_files
from repro.training.models import MLP
from repro.training.trainer import DataParallelTrainer, make_array_collate

DOCS = Path(__file__).parents[2] / "docs" / "observability.md"

FEATURES = 16
CLASSES = 3


def _catalogue_patterns() -> list[re.Pattern]:
    """Backticked names from the first cell of every docs table row,
    with ``<placeholder>`` segments widened to wildcards."""
    patterns = []
    for line in DOCS.read_text().splitlines():
        m = re.match(r"\|\s*`([^`]+)`\s*\|", line)
        if not m:
            continue
        escaped = re.escape(m.group(1))
        wildcarded = re.sub(r"<[a-z_]+>", r"[A-Za-z0-9_\\-]+", escaped)
        patterns.append(re.compile(rf"^{wildcarded}$"))
    return patterns


def _em_decoder(raw: bytes, path: str):
    arr = np.frombuffer(raw[8 : 8 + FEATURES * 8], dtype=np.uint8)
    features = arr[:FEATURES].astype(np.float64) / 255.0
    label = int(path.split("/")[0].removeprefix("cls"))
    return features, label


@pytest.fixture(scope="module")
def runtime_names(prepared_dataset):
    """Every metric name a full workload registers: reads with phase
    observation, a compressed write, a scrub, a short training run,
    and a 2-rank membership store."""
    reg = MetricsRegistry(rank=0, label="catalogue")
    config = DaemonConfig(metrics_every=1, output_compressor="zlib-1")
    opts = FanStoreOptions(config=config, metrics=reg)
    with FanStore(prepared_dataset, opts) as fs:
        for rec in fs.daemon.metadata.walk_files():
            fs.client.read_file(rec.path)
        fs.client.write_file("out/artifact.bin", b"payload" * 64)
        fs.scrubber().run()
        files = [
            p for p in list_training_files(fs.client) if p.startswith("cls")
        ]
        loader = SyncLoader(
            fs.client, files, batch_size=6, epochs=1,
            decoder=_em_decoder, metrics=reg,
        )
        trainer = DataParallelTrainer(
            MLP([FEATURES, 12, CLASSES], seed=42),
            loader,
            make_array_collate((FEATURES,), CLASSES),
            lr=0.1,
            log_client=fs.client,
            metrics=reg,
        )
        trainer.train()
    names = set(reg.names())

    def body(comm):
        fs = FanStore.with_membership(prepared_dataset, comm)
        with fs:
            comm.barrier()
        return fs.metrics.names()

    for rank_names in run_parallel(body, 2, timeout=60):
        names.update(rank_names)
    return names


def test_catalogue_covers_every_runtime_name(runtime_names):
    patterns = _catalogue_patterns()
    assert len(patterns) > 40  # the docs tables parsed
    undocumented = sorted(
        name for name in runtime_names
        if not any(p.match(name) for p in patterns)
    )
    assert not undocumented, (
        f"metric names missing from docs/observability.md: {undocumented}"
    )


def test_workload_exercises_every_subsystem(runtime_names):
    """The lint is only meaningful if the workload actually registered
    each namespace the catalogue documents."""
    for expected in (
        "daemon.local_opens",
        "daemon.open_seconds",
        "daemon.phase.fetch_seconds",
        "daemon.phase.verify_seconds",
        "daemon.phase.decompress_seconds",
        "daemon.write_seconds",
        "cache.hit_ratio",
        "codec.zlib-1.decode_seconds",
        "codec.zlib-1.encode_seconds",
        "scrub.bytes_scanned",
        "scrub.pending",
        "membership.view_epoch",
        "membership.heartbeats_sent",
        "trainer.steps",
        "trainer.step_seconds",
        "loader.batch_seconds",
        "loader.bytes_read",
    ):
        assert expected in runtime_names, expected


def test_docs_cross_linked():
    readme = (Path(__file__).parents[2] / "README.md").read_text()
    assert "docs/observability.md" in readme
    internals = (
        Path(__file__).parents[2] / "docs" / "fanstore-internals.md"
    ).read_text()
    assert "observability.md" in internals
