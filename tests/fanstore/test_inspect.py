"""The fanstore-inspect tool."""

from __future__ import annotations

import pytest

from repro.fanstore.inspect import (
    list_partition,
    main,
    summarize_dataset,
    verify_dataset,
)


class TestSummarize:
    def test_summary_fields(self, prepared_dataset):
        out = summarize_dataset(prepared_dataset.root)
        assert "files:       15" in out
        assert "partitions:  3 + broadcast" in out
        assert "ratio:" in out


class TestList:
    def test_lists_entries_with_compressor(self, prepared_dataset):
        path = prepared_dataset.partition_paths()[0]
        out = list_partition(path)
        assert "entries" in out
        assert "->" in out

    def test_limit_truncates(self, prepared_dataset):
        path = prepared_dataset.partition_paths()[0]
        out = list_partition(path, limit=1)
        assert "more" in out


class TestVerify:
    def test_clean_dataset_verifies(self, prepared_dataset):
        verified, problems = verify_dataset(prepared_dataset.root)
        assert verified == 15
        assert problems == []

    def test_corruption_detected(self, prepared_dataset, tmp_path):
        import shutil

        bad = tmp_path / "bad"
        shutil.copytree(prepared_dataset.root, bad)
        victim = bad / prepared_dataset.partitions[0]
        raw = bytearray(victim.read_bytes())
        raw[-10] ^= 0xFF  # corrupt the last entry's payload
        victim.write_bytes(bytes(raw))
        verified, problems = verify_dataset(bad)
        assert problems
        assert verified < 15


class TestCli:
    def test_main_summary(self, prepared_dataset, capsys):
        assert main([str(prepared_dataset.root)]) == 0
        assert "ratio" in capsys.readouterr().out

    def test_main_verify_ok(self, prepared_dataset, capsys):
        assert main([str(prepared_dataset.root), "--verify"]) == 0
        assert "verified 15 entries" in capsys.readouterr().out

    def test_main_list(self, prepared_dataset, capsys):
        assert main([str(prepared_dataset.root), "--list", "--limit", "2"]) == 0
        out = capsys.readouterr().out
        assert "part-00000.fst" in out

    def test_main_verify_corrupt_exits_nonzero(self, prepared_dataset,
                                               tmp_path, capsys):
        import shutil

        bad = tmp_path / "bad"
        shutil.copytree(prepared_dataset.root, bad)
        victim = bad / prepared_dataset.partitions[1]
        raw = bytearray(victim.read_bytes())
        raw[-5] ^= 0x55
        victim.write_bytes(bytes(raw))
        assert main([str(bad), "--verify"]) == 1
        assert "PROBLEM" in capsys.readouterr().out
