"""Interconnect performance models.

Point-to-point transfers follow the postal (α–β) model
``t = latency + size/bandwidth``; collectives use the standard
algorithm-aware cost formulas (recursive-doubling / ring) that MPI
implementations realize. Constants match the paper's fabrics: Mellanox
FDR InfiniBand (56 Gb/s, sub-µs latency; GTX and V100 clusters) and
Intel Omni-Path (100 Gb/s; the CPU cluster).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import SimulationError
from repro.util.units import GB


@dataclass(frozen=True)
class InterconnectModel:
    """α–β fabric model with an optional per-node injection ceiling."""

    name: str
    latency: float  # α: one-way small-message latency (s)
    bandwidth: float  # β⁻¹: per-link payload bandwidth (bytes/s)
    injection_bandwidth: float = 0.0  # per-node NIC ceiling; 0 = link rate

    def __post_init__(self) -> None:
        if self.latency < 0:
            raise SimulationError(f"{self.name}: negative latency")
        if self.bandwidth <= 0:
            raise SimulationError(f"{self.name}: bandwidth must be positive")

    @property
    def node_bandwidth(self) -> float:
        return self.injection_bandwidth or self.bandwidth

    # -- point to point ---------------------------------------------------

    def p2p_time(self, size: int) -> float:
        """One message of ``size`` bytes between two nodes."""
        if size < 0:
            raise SimulationError(f"negative size {size}")
        return self.latency + size / self.bandwidth

    # -- collectives -------------------------------------------------------

    def allgather_time(self, per_rank_bytes: int, nodes: int) -> float:
        """Ring allgather: each node receives (N−1) blocks in N−1 steps.

        This is the §V-D metadata-broadcast cost.
        """
        if nodes < 1:
            raise SimulationError(f"nodes must be >= 1, got {nodes}")
        if nodes == 1:
            return 0.0
        steps = nodes - 1
        return steps * (self.latency + per_rank_bytes / self.bandwidth)

    def allreduce_time(self, message_bytes: int, nodes: int) -> float:
        """Rabenseifner/ring allreduce: ≈ 2·log₂N latency terms plus
        2·(N−1)/N of the payload through each NIC — the gradient-exchange
        cost in each training iteration."""
        if nodes < 1:
            raise SimulationError(f"nodes must be >= 1, got {nodes}")
        if nodes == 1:
            return 0.0
        lat = 2.0 * math.ceil(math.log2(nodes)) * self.latency
        bw = 2.0 * (nodes - 1) / nodes * message_bytes / self.node_bandwidth
        return lat + bw

    def broadcast_time(self, message_bytes: int, nodes: int) -> float:
        """Binomial-tree broadcast."""
        if nodes < 1:
            raise SimulationError(f"nodes must be >= 1, got {nodes}")
        if nodes == 1:
            return 0.0
        return math.ceil(math.log2(nodes)) * self.p2p_time(message_bytes)

    def ring_shift_time(self, block_bytes: int) -> float:
        """One neighbor-to-neighbor block transfer in the §V-D virtual
        ring used for loading extra partitions; by construction the ring
        is contention-free so this is a single p2p message."""
        return self.p2p_time(block_bytes)


def fdr_infiniband() -> InterconnectModel:
    """Mellanox FDR: 56 Gb/s signaling ⇒ ~6.8 GB/s payload, ~0.7 µs."""
    return InterconnectModel(
        name="fdr-ib",
        latency=0.7e-6,
        bandwidth=6.8 * GB,
        injection_bandwidth=6.0 * GB,
    )


def omni_path() -> InterconnectModel:
    """Intel OPA: 100 Gb/s ⇒ ~12.3 GB/s payload, ~0.9 µs, fat tree."""
    return InterconnectModel(
        name="opa",
        latency=0.9e-6,
        bandwidth=12.3 * GB,
        injection_bandwidth=11.0 * GB,
    )
