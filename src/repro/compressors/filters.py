"""Reversible pre-compression byte transforms.

Scientific datasets (the paper's EM imagery, tokamak signals, FITS
arrays) compress far better after a structural transform exposes value
locality. These filters are the suite's analog of lzbench's ``-f``
options and of HDF5-style shuffle filters; each composes with any codec
to form additional compressor configurations.
"""

from __future__ import annotations

import numpy as np

from repro.compressors.base import Filter
from repro.errors import CompressionError


class DeltaFilter(Filter):
    """Byte-wise delta: each output byte is ``x[i] - x[i-1] (mod 256)``.

    Turns smooth sequences (image rows, monotone signals) into
    near-zero-centered residuals that entropy coders like.
    """

    name = "delta"

    def forward(self, data: bytes) -> bytes:
        if len(data) < 2:
            return bytes(data)
        arr = np.frombuffer(data, dtype=np.uint8)
        out = np.empty_like(arr)
        out[0] = arr[0]
        np.subtract(arr[1:], arr[:-1], out=out[1:])
        return out.tobytes()

    def backward(self, data: bytes) -> bytes:
        if len(data) < 2:
            return bytes(data)
        arr = np.frombuffer(data, dtype=np.uint8)
        return np.cumsum(arr, dtype=np.uint8).tobytes()


class XorFilter(Filter):
    """Byte-wise XOR with the previous byte — a self-inverse-free variant
    of delta that preserves zero runs exactly (good for sparse arrays)."""

    name = "xor"

    def forward(self, data: bytes) -> bytes:
        if len(data) < 2:
            return bytes(data)
        arr = np.frombuffer(data, dtype=np.uint8)
        out = np.empty_like(arr)
        out[0] = arr[0]
        np.bitwise_xor(arr[1:], arr[:-1], out=out[1:])
        return out.tobytes()

    def backward(self, data: bytes) -> bytes:
        if len(data) < 2:
            return bytes(data)
        arr = np.frombuffer(data, dtype=np.uint8).copy()
        # Prefix-XOR has no vectorized primitive; do it in log2(n) doubling
        # steps over the array instead of a Python-level byte loop.
        shift = 1
        n = len(arr)
        while shift < n:
            arr[shift:] ^= arr[:-shift]
            shift <<= 1
        return arr.tobytes()


class BitshuffleFilter(Filter):
    """Transpose the bit matrix: bit *k* of every byte becomes contiguous.

    For numeric arrays whose values share high-order bit patterns, this
    creates long runs. One header byte records input padding (inputs are
    padded to a multiple of 8 bytes so the bit matrix is rectangular).
    """

    name = "bitshuffle"

    def forward(self, data: bytes) -> bytes:
        pad = (-len(data)) % 8
        arr = np.frombuffer(data + b"\x00" * pad, dtype=np.uint8)
        bits = np.unpackbits(arr).reshape(-1, 8)
        shuffled = np.packbits(bits.T.reshape(-1))
        return bytes([pad]) + shuffled.tobytes()

    def backward(self, data: bytes) -> bytes:
        if not data:
            raise CompressionError("bitshuffle: missing pad header")
        pad = data[0]
        if pad > 7:
            raise CompressionError(f"bitshuffle: invalid pad {pad}")
        body = np.frombuffer(data, dtype=np.uint8, offset=1)
        if body.size == 0:
            if pad:
                raise CompressionError("bitshuffle: pad with empty body")
            return b""
        bits = np.unpackbits(body).reshape(8, -1)
        out = np.packbits(bits.T.reshape(-1)).tobytes()
        return out[: len(out) - pad] if pad else out


class MtfFilter(Filter):
    """Move-to-front transform (the BWT-pipeline middle stage).

    Recently seen bytes encode as small indices, skewing the output
    distribution for an entropy coder. Not part of the default
    180-configuration suite (which mirrors the paper's count) but
    available for custom registries and the bzip2-style pipeline
    ``mtf → rle → huffman``.
    """

    name = "mtf"

    def forward(self, data: bytes) -> bytes:
        table = list(range(256))
        out = bytearray(len(data))
        for i, byte in enumerate(data):
            idx = table.index(byte)
            out[i] = idx
            if idx:
                del table[idx]
                table.insert(0, byte)
        return bytes(out)

    def backward(self, data: bytes) -> bytes:
        table = list(range(256))
        out = bytearray(len(data))
        for i, idx in enumerate(data):
            byte = table[idx]
            out[i] = byte
            if idx:
                del table[idx]
                table.insert(0, byte)
        return bytes(out)


class TransposeFilter(Filter):
    """Shuffle fixed-width records: byte *k* of every ``width``-byte element
    becomes contiguous (HDF5 "shuffle"). Effective on little-endian
    numeric arrays where high bytes are near-constant. One header byte
    records the tail length (bytes beyond the last full element pass
    through untransformed)."""

    def __init__(self, width: int) -> None:
        if not 2 <= width <= 255:
            raise ValueError(f"width must be in [2, 255], got {width}")
        self.width = width
        self.name = f"shuffle{width}"

    def forward(self, data: bytes) -> bytes:
        tail_len = len(data) % self.width
        body_len = len(data) - tail_len
        body = np.frombuffer(data[:body_len], dtype=np.uint8)
        shuffled = body.reshape(-1, self.width).T.reshape(-1)
        return bytes([tail_len]) + shuffled.tobytes() + data[body_len:]

    def backward(self, data: bytes) -> bytes:
        if not data:
            raise CompressionError("shuffle: missing tail header")
        tail_len = data[0]
        if tail_len >= self.width:
            raise CompressionError(f"shuffle: invalid tail {tail_len}")
        body_end = len(data) - tail_len
        body = np.frombuffer(data[1:body_end], dtype=np.uint8)
        if body.size % self.width:
            raise CompressionError("shuffle: body not a multiple of width")
        restored = body.reshape(self.width, -1).T.reshape(-1)
        return restored.tobytes() + data[body_end:]
