"""Shared benchmark fixtures and paper-vs-measured reporting.

Every benchmark prints a :class:`~repro.bench.report.PaperComparison`
next to pytest-benchmark's timing table and appends it to
``benchmarks/_results/<experiment>.txt`` so EXPERIMENTS.md can be
assembled from the recorded outputs. Each report also drops a
``<slug>.metrics.jsonl`` beside it — a snapshot of every live
:class:`~repro.obs.metrics.MetricsRegistry` the run touched (render
with ``fanstore-top benchmarks/_results/``).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

import pytest

from repro.bench.report import PaperComparison
from repro.datasets.synthetic import generate_dataset
from repro.fanstore.prepare import prepare_dataset
from repro.fanstore.store import FanStore
from repro.obs.metrics import live_registries

RESULTS_DIR = Path(__file__).parent / "_results"


@pytest.fixture(scope="session")
def emit_report():
    """Print a comparison (past pytest's capture) and persist it,
    plus a metrics snapshot of everything the benchmark touched."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _emit(comparison: PaperComparison) -> None:
        text = comparison.render()
        sys.stderr.write("\n" + text + "\n")
        slug = re.sub(r"[^a-z0-9]+", "_", comparison.experiment.lower()).strip("_")
        path = RESULTS_DIR / f"{slug}.txt"
        path.write_text(text + "\n")
        snapshots = [
            reg.snapshot() for reg in live_registries() if len(reg)
        ]
        if snapshots:
            metrics_path = RESULTS_DIR / f"{slug}.metrics.jsonl"
            for i, snap in enumerate(snapshots):
                snap.write_jsonl(metrics_path, append=i > 0)

    return _emit


@pytest.fixture(scope="session")
def em_dataset_dir(tmp_path_factory):
    """A reduced EM dataset: 24 files × ~48 KiB (small enough for the
    pure-Python codecs, large enough to be bandwidth-meaningful)."""
    root = tmp_path_factory.mktemp("em-raw")
    generate_dataset("em", root, num_files=24, avg_file_size=48 * 1024,
                     num_dirs=3, seed=11)
    return root


@pytest.fixture(scope="session")
def em_store(em_dataset_dir, tmp_path_factory):
    """A single-node FanStore over the EM dataset, zlib-1-packed."""
    packed = tmp_path_factory.mktemp("em-packed")
    prepared = prepare_dataset(
        em_dataset_dir, packed, num_partitions=2, compressor="zlib-1",
        threads=2,
    )
    with FanStore(prepared) as fs:
        yield fs


@pytest.fixture(scope="session")
def em_store_raw(em_dataset_dir, tmp_path_factory):
    """Compression-free FanStore (§VII-C's configuration for Figure 6 /
    Table III): files stored verbatim, open() is one hash lookup and a
    copy."""
    packed = tmp_path_factory.mktemp("em-packed-raw")
    prepared = prepare_dataset(
        em_dataset_dir, packed, num_partitions=2, compressor="memcpy",
        threads=2,
    )
    with FanStore(prepared) as fs:
        yield fs
