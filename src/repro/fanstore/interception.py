"""User-space function interception (§IV-A, §V-C).

The paper intercepts glibc I/O functions with LD_PRELOAD + trampolines
so unmodified training programs read FanStore through ordinary POSIX
calls. The Python-runtime equivalent interposes at the points Python
programs make those calls: ``builtins.open``, ``os.stat``, ``os.listdir``,
``os.scandir``, ``os.path.exists/isfile/isdir`` and ``os.open``-family
wrappers. Paths under the mount point route to the FanStore client;
everything else passes through to the originals — exactly the
LD_PRELOAD contract, one layer up the stack.

Usage::

    with intercept(fs):                      # fs: FanStore
        data = open("/fanstore/train/x.npy", "rb").read()
        names = os.listdir("/fanstore/train")

The context manager is reentrant per-thread in the sense that nested
intercepts of different stores stack; on exit the previous functions
are restored verbatim.
"""

from __future__ import annotations

import builtins
import io
import os
import os.path
import stat as stat_module
from contextlib import contextmanager
from typing import Iterator

from repro.fanstore.layout import FileStat
from repro.fanstore.store import FanStore


class _InterceptedStatResult:
    """Duck-typed ``os.stat_result`` built from a FanStore record."""

    __slots__ = ("st_mode", "st_ino", "st_dev", "st_nlink", "st_uid",
                 "st_gid", "st_size", "st_atime", "st_mtime", "st_ctime",
                 "st_blksize", "st_blocks")

    def __init__(self, fstat: FileStat) -> None:
        self.st_mode = fstat.st_mode
        self.st_ino = fstat.st_ino
        self.st_dev = fstat.st_dev
        self.st_nlink = fstat.st_nlink
        self.st_uid = fstat.st_uid
        self.st_gid = fstat.st_gid
        self.st_size = fstat.st_size
        self.st_atime = fstat.st_atime_ns / 1e9
        self.st_mtime = fstat.st_mtime_ns / 1e9
        self.st_ctime = fstat.st_ctime_ns / 1e9
        self.st_blksize = fstat.st_blksize
        self.st_blocks = fstat.st_blocks


class _InterceptedDirEntry:
    """Duck-typed ``os.DirEntry`` for intercepted ``os.scandir``."""

    __slots__ = ("name", "path", "_store", "_rel")

    def __init__(self, store: FanStore, parent: str, name: str) -> None:
        self.name = name
        self.path = f"{parent.rstrip('/')}/{name}"
        self._store = store
        self._rel = store.resolve(self.path)

    def is_file(self, *, follow_symlinks: bool = True) -> bool:
        return self._store.daemon.metadata.is_file(self._rel)

    def is_dir(self, *, follow_symlinks: bool = True) -> bool:
        return self._store.daemon.metadata.is_dir(self._rel)

    def is_symlink(self) -> bool:
        return False

    def stat(self, *, follow_symlinks: bool = True) -> _InterceptedStatResult:
        return _InterceptedStatResult(self._store.client.stat(self._rel))

    def __fspath__(self) -> str:
        return self.path


class _ScandirIterator:
    """os.scandir's return type is an iterator *and* a context manager
    (``os.walk`` relies on both); mirror that for intercepted paths."""

    __slots__ = ("_iter",)

    def __init__(self, entries) -> None:
        self._iter = iter(entries)

    def __iter__(self):
        return self

    def __next__(self):
        return next(self._iter)

    def __enter__(self):
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        self._iter = iter(())


def _under_mount(store: FanStore, path) -> bool:
    try:
        text = os.fspath(path)
    except TypeError:
        return False
    if isinstance(text, bytes):
        text = text.decode("utf-8", "surrogateescape")
    return text == store.mount_point or text.startswith(store.mount_point + "/")


#: intercepted descriptors live far above any real kernel fd so the
#: patched fd-level calls can route without a table lookup (the same
#: trick the paper's trampoline layer plays with its private fd space).
FD_BASE = 1 << 20


@contextmanager
def intercept(store: FanStore) -> Iterator[FanStore]:
    """Patch the Python I/O surface to serve ``store.mount_point``.

    Covers both interposition depths of §V-C: the high-level calls
    Python code makes (``builtins.open``, ``os.listdir``, ``os.stat``,
    ``os.scandir``, ``os.path`` predicates) *and* the fd-level calls
    (``os.open``/``os.read``/``os.pread``/``os.lseek``/``os.close``/
    ``os.fstat``) that libraries doing raw descriptor I/O use —
    the dlsym-preload and trampoline layers of the paper, one level up
    the stack."""
    orig_open = builtins.open
    orig_io_open = io.open
    orig_stat = os.stat
    orig_listdir = os.listdir
    orig_scandir = os.scandir
    orig_exists = os.path.exists
    orig_isfile = os.path.isfile
    orig_isdir = os.path.isdir
    orig_os_open = os.open
    orig_os_read = os.read
    orig_os_pread = os.pread
    orig_os_lseek = os.lseek
    orig_os_write = os.write
    orig_os_close = os.close
    orig_os_fstat = os.fstat

    def patched_open(file, mode="r", *args, **kwargs):
        if _under_mount(store, file):
            return store.client.open_file(store.resolve(os.fspath(file)), mode)
        return orig_open(file, mode, *args, **kwargs)

    def patched_stat(path, *args, **kwargs):
        if _under_mount(store, path):
            return _InterceptedStatResult(
                store.client.stat(store.resolve(os.fspath(path)))
            )
        return orig_stat(path, *args, **kwargs)

    def patched_listdir(path="."):
        if _under_mount(store, path):
            return store.client.listdir(store.resolve(os.fspath(path)))
        return orig_listdir(path)

    def patched_scandir(path="."):
        if _under_mount(store, path):
            text = os.fspath(path)
            names = store.client.listdir(store.resolve(text))
            return _ScandirIterator(
                [_InterceptedDirEntry(store, text, n) for n in names]
            )
        return orig_scandir(path)

    def patched_exists(path):
        if _under_mount(store, path):
            return store.client.exists(store.resolve(os.fspath(path)))
        return orig_exists(path)

    def patched_isfile(path):
        if _under_mount(store, path):
            return store.daemon.metadata.is_file(
                store.resolve(os.fspath(path))
            )
        return orig_isfile(path)

    def patched_isdir(path):
        if _under_mount(store, path):
            return store.daemon.metadata.is_dir(store.resolve(os.fspath(path)))
        return orig_isdir(path)

    # -- fd-level calls (the trampoline layer) ---------------------------

    def patched_os_open(path, flags, mode=0o777, **kwargs):
        if _under_mount(store, path):
            fd = store.client.open(store.resolve(os.fspath(path)), flags, mode)
            return fd + FD_BASE
        return orig_os_open(path, flags, mode, **kwargs)

    def patched_os_read(fd, n):
        if fd >= FD_BASE:
            return store.client.read(fd - FD_BASE, n)
        return orig_os_read(fd, n)

    def patched_os_pread(fd, n, offset):
        if fd >= FD_BASE:
            return store.client.pread(fd - FD_BASE, n, offset)
        return orig_os_pread(fd, n, offset)

    def patched_os_lseek(fd, pos, whence):
        if fd >= FD_BASE:
            return store.client.lseek(fd - FD_BASE, pos, whence)
        return orig_os_lseek(fd, pos, whence)

    def patched_os_write(fd, data):
        if fd >= FD_BASE:
            return store.client.write(fd - FD_BASE, bytes(data))
        return orig_os_write(fd, data)

    def patched_os_close(fd):
        if fd >= FD_BASE:
            store.client.close(fd - FD_BASE)
            return None
        return orig_os_close(fd)

    def patched_os_fstat(fd):
        if fd >= FD_BASE:
            return _InterceptedStatResult(store.client.fstat(fd - FD_BASE))
        return orig_os_fstat(fd)

    builtins.open = patched_open
    io.open = patched_open  # pathlib.Path.open and many libraries
    os.stat = patched_stat
    os.listdir = patched_listdir
    os.scandir = patched_scandir
    os.path.exists = patched_exists
    os.path.isfile = patched_isfile
    os.path.isdir = patched_isdir
    os.open = patched_os_open
    os.read = patched_os_read
    os.pread = patched_os_pread
    os.lseek = patched_os_lseek
    os.write = patched_os_write
    os.close = patched_os_close
    os.fstat = patched_os_fstat
    try:
        yield store
    finally:
        builtins.open = orig_open
        io.open = orig_io_open
        os.stat = orig_stat
        os.listdir = orig_listdir
        os.scandir = orig_scandir
        os.path.exists = orig_exists
        os.path.isfile = orig_isfile
        os.path.isdir = orig_isdir
        os.open = orig_os_open
        os.read = orig_os_read
        os.pread = orig_os_pread
        os.lseek = orig_os_lseek
        os.write = orig_os_write
        os.close = orig_os_close
        os.fstat = orig_os_fstat


def is_directory_stat(result: _InterceptedStatResult) -> bool:
    """Helper mirroring ``stat.S_ISDIR`` for intercepted results."""
    return stat_module.S_ISDIR(result.st_mode)
