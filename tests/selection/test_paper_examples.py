"""§VII-E's three worked case studies, checked against the paper's
published intermediate values and final selections."""

from __future__ import annotations

import pytest

from repro.selection.cases import (
    ALL_CASES,
    frnn_cpu,
    get_case,
    srgan_gtx,
    srgan_v100,
)
from repro.selection.cli import main, run_case
from repro.selection.model import CompressorSelector


class TestSrganGtx:
    """§VII-E1, the fully worked example."""

    def test_baseline_read_time_matches_paper(self):
        sel = CompressorSelector(srgan_gtx().inputs)
        # paper: T_read(C, S') = max(256/3158, 410/6663) = 81 063 µs
        assert sel.read_time_uncompressed() == pytest.approx(
            81_063e-6, rel=0.001
        )

    def test_selects_lzsse8(self):
        case = srgan_gtx()
        result = CompressorSelector(case.inputs).select(case.candidates())
        assert result.selected is not None
        assert result.selected.name == "lzsse8"

    def test_slow_compressors_rejected(self):
        case = srgan_gtx()
        result = CompressorSelector(case.inputs).select(case.candidates())
        rejected = {
            v.candidate.name
            for v in result.verdicts
            if not v.meets_performance
        }
        assert {"brotli", "zling", "lzma"} <= rejected

    def test_capacity_requirement_is_2_1(self):
        assert srgan_gtx().inputs.required_ratio == pytest.approx(2.08, abs=0.05)

    def test_fig8a_slowdown_ordering(self):
        """Figure 8(a): lzsse8 ≈ baseline; brotli/zling/lzma cost
        1.1–2.3×. The measured slowdowns match single-threaded
        decompression (see model docstring)."""
        case = srgan_gtx()
        sel = CompressorSelector(case.inputs)
        by_name = {c.name: c for c in case.candidates()}
        frac = lambda n: sel.performance_fraction(
            by_name[n], decompress_parallelism=1
        )
        assert frac("lzsse8") > 0.97  # indistinguishable from baseline
        assert 0.80 < frac("brotli") < 0.95  # the paper's "~10 % for 3.4×"
        assert frac("zling") < frac("brotli")
        assert frac("lzma") < 0.55  # the paper's worst case (2.3×)


class TestFrnnCpu:
    """§VII-E2: async I/O accepts everything; highest ratio wins."""

    def test_every_candidate_qualifies(self):
        case = frnn_cpu()
        result = CompressorSelector(case.inputs).select(case.candidates())
        assert all(v.meets_performance for v in result.verdicts)

    def test_budget_generous(self):
        # paper: "the acceptable decompression cost is 4 952 µs";
        # our derivation with the published inputs lands at the same
        # order (ms-scale — every candidate is µs-scale).
        sel = CompressorSelector(frnn_cpu().inputs)
        budget = sel.budget_per_file(2.6)
        assert 1e-3 < budget < 10e-3

    def test_selects_highest_ratio(self):
        case = frnn_cpu()
        result = CompressorSelector(case.inputs).select(case.candidates())
        assert result.selected.name == "brotli"

    def test_fig8b_all_match_baseline(self):
        """Figure 8(b): all three compressors run at baseline speed."""
        case = frnn_cpu()
        sel = CompressorSelector(case.inputs)
        for cand in case.candidates():
            assert sel.performance_fraction(cand) > 0.99


class TestSrganV100:
    """§VII-E3: nothing strictly qualifies; lz4hc taken as fallback."""

    def test_budget_near_125us(self):
        sel = CompressorSelector(srgan_v100().inputs)
        assert sel.budget_per_file(2.1) == pytest.approx(125e-6, rel=0.05)

    def test_no_strict_winner_fallback_lz4hc(self):
        case = srgan_v100()
        result = CompressorSelector(case.inputs).select(case.candidates())
        assert result.selected is None
        assert result.fallback is not None
        assert result.fallback.name == "lz4hc"

    def test_lz4fast_excluded_from_fallback(self):
        """lz4fast meets the budget by ratio≈1 — the paper rejects it
        because it buys no capacity. (Its ratio 1.3 is below the 1.5
        fallback threshold.)"""
        case = srgan_v100()
        result = CompressorSelector(case.inputs).select(case.candidates())
        assert result.fallback.name != "lz4fast"

    def test_lz4hc_performance_near_baseline(self):
        """Paper: 95.3 % of baseline. Model band: 90–99 %."""
        case = srgan_v100()
        sel = CompressorSelector(case.inputs)
        lz4hc = next(c for c in case.candidates() if c.name == "lz4hc")
        assert 0.90 < sel.performance_fraction(lz4hc) < 0.995

    def test_heavy_compressors_far_below_baseline(self):
        case = srgan_v100()
        sel = CompressorSelector(case.inputs)
        by_name = {c.name: c for c in case.candidates()}
        assert sel.performance_fraction(by_name["brotli"]) < 0.9
        assert sel.performance_fraction(by_name["lzma"]) < 0.5


class TestCliAndRegistry:
    def test_all_cases_resolve(self):
        for name in ALL_CASES:
            case = get_case(name)
            assert case.candidates()

    def test_unknown_case(self):
        with pytest.raises(KeyError):
            get_case("nope")

    def test_run_case_report_mentions_selection(self):
        out = run_case("srgan-gtx")
        assert "lzsse8" in out
        assert "selected" in out

    def test_cli_main_all(self, capsys):
        assert main([]) == 0
        out = capsys.readouterr().out
        for name in ALL_CASES:
            assert name in out

    def test_cli_main_single(self, capsys):
        assert main(["frnn-cpu"]) == 0
        assert "brotli" in capsys.readouterr().out
