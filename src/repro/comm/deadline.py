"""Absolute deadlines for request budgeting.

The retry ladder used to stack timeouts: ``max_retries ×
request_timeout`` per tier, tier after tier, so a read could outlive
the trainer's ``comm_timeout`` by a wide margin. A :class:`Deadline`
inverts that: the caller fixes one absolute point in time, every
blocking step caps its own timeout by :meth:`remaining`, and whatever
work is left when the budget hits zero is abandoned with
:class:`~repro.errors.DeadlineExpiredError` instead of started.

Deadlines also ride the wire. Daemon request bodies carry the absolute
``at`` value as an optional fourth element (see
:mod:`repro.fanstore.daemon`), so a serving rank can drop work whose
requester has already given up rather than reply into the void. The
value is a ``time.monotonic()`` reading — meaningful across "ranks"
here because every rank is a thread of one process sharing one clock;
a cross-host port would swap in a bounded-skew wall clock.

The clock is injectable so unit tests can step time by hand.
"""

from __future__ import annotations

import time
from typing import Callable

from repro.errors import DeadlineExpiredError

Clock = Callable[[], float]


class Deadline:
    """An absolute point on the monotonic clock that work must not
    outlive."""

    __slots__ = ("at", "_clock")

    def __init__(self, at: float, *, clock: Clock = time.monotonic) -> None:
        self.at = float(at)
        self._clock = clock

    @classmethod
    def after(
        cls, seconds: float, *, clock: Clock = time.monotonic
    ) -> "Deadline":
        """The deadline ``seconds`` from now."""
        if seconds < 0:
            raise ValueError(f"deadline budget must be >= 0, got {seconds}")
        return cls(clock() + seconds, clock=clock)

    def remaining(self) -> float:
        """Seconds left; never negative."""
        return max(0.0, self.at - self._clock())

    def expired(self) -> bool:
        return self._clock() >= self.at

    def cap(self, timeout: float | None) -> float:
        """``timeout`` clipped to the remaining budget (``None`` means
        "no per-step preference": the whole remainder)."""
        remaining = self.remaining()
        if timeout is None:
            return remaining
        return min(float(timeout), remaining)

    def check(self, detail: str, path: str | None = None) -> None:
        """Raise :class:`DeadlineExpiredError` if the budget is spent."""
        if self.expired():
            raise DeadlineExpiredError(detail, path)

    def __repr__(self) -> str:
        return f"Deadline(at={self.at:.6f}, remaining={self.remaining():.6f})"


def wire_deadline(value: object) -> float | None:
    """Parse a wire-carried deadline: a finite number, or None for
    anything else (a server must never crash on a hostile header)."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return None
    value = float(value)
    if value != value or value in (float("inf"), float("-inf")):
        return None
    return value
