"""Storage models: affine costs, Table III calibration, validation."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.simnet.devices import (
    TABLE3_SIZES,
    StorageModel,
    fanstore_local,
    fuse_over_ssd,
    lustre,
    ram_disk,
    ssd,
)
from repro.util.units import GB, KIB

#: Table III (files/sec): size -> (fanstore, ssd-fuse, ssd, lustre)
TABLE3 = {
    128 * KIB: (28_248, 6_687, 39_480, 1_515),
    512 * KIB: (9_689, 2_416, 9_752, 149),
    2 * 1024 * KIB: (2_513, 738, 2_786, 385),
    8 * 1024 * KIB: (560, 197, 678, 139),
}


class TestAffineModel:
    def test_read_time_monotone_in_size(self):
        model = ssd()
        times = [model.read_time(s) for s in TABLE3_SIZES]
        assert times == sorted(times)

    def test_zero_size_costs_per_op_latency(self):
        model = ssd()
        assert model.read_time(0) == pytest.approx(model.per_op_latency)

    def test_negative_size_rejected(self):
        with pytest.raises(SimulationError):
            ssd().read_time(-1)
        with pytest.raises(SimulationError):
            ssd().write_time(-1)

    def test_chunked_model_adds_per_chunk(self):
        fuse = fuse_over_ssd()
        one = fuse.read_time(128 * KIB)
        four = fuse.read_time(512 * KIB)
        # 4 chunks vs 1: at least 3 extra crossings' worth of cost.
        assert four - one > 2.5 * fuse.per_chunk

    def test_invalid_parameters_rejected(self):
        with pytest.raises(SimulationError):
            StorageModel("bad", read_bandwidth=0, write_bandwidth=1,
                         per_op_latency=0, metadata_latency=0)
        with pytest.raises(SimulationError):
            StorageModel("bad", read_bandwidth=1, write_bandwidth=1,
                         per_op_latency=-1, metadata_latency=0)
        with pytest.raises(SimulationError):
            StorageModel("bad", read_bandwidth=1, write_bandwidth=1,
                         per_op_latency=0, metadata_latency=0, chunk_size=10)


class TestTable3Calibration:
    """The calibrated devices must land within 2× of every Table III
    cell and preserve the orderings the paper highlights."""

    @pytest.mark.parametrize("size", sorted(TABLE3))
    def test_within_band(self, size):
        fs, fuse_fps, ssd_fps, lus = TABLE3[size]
        assert fanstore_local().read_files_per_second(size) == pytest.approx(
            fs, rel=0.6
        )
        assert fuse_over_ssd().read_files_per_second(size) == pytest.approx(
            fuse_fps, rel=0.6
        )
        assert ssd().read_files_per_second(size) == pytest.approx(
            ssd_fps, rel=0.6
        )
        # The paper's Lustre row is noisy (non-monotone: 149 f/s at
        # 512 KB but 385 f/s at 2 MB — a shared production system); an
        # affine model cannot land every cell, so Lustre is checked
        # order-of-magnitude except the self-contradictory 512 KB cell.
        if size != 512 * KIB:
            assert lustre().read_files_per_second(size) == pytest.approx(
                lus, rel=3.0
            )

    @pytest.mark.parametrize("size", sorted(TABLE3))
    def test_ordering_fanstore_between_fuse_and_ssd(self, size):
        """FanStore ≤ raw SSD but ≫ FUSE and ≫ Lustre, at every size —
        the qualitative claim of §VII-C."""
        fs = fanstore_local().read_files_per_second(size)
        assert fs <= ssd().read_files_per_second(size)
        assert fs > 2.0 * fuse_over_ssd().read_files_per_second(size)
        assert fs > 3.5 * lustre().read_files_per_second(size)

    def test_fanstore_fraction_of_ssd(self):
        """Paper: 71–99 % of raw SSD."""
        for size in TABLE3:
            frac = fanstore_local().read_files_per_second(size) / ssd(
            ).read_files_per_second(size)
            assert 0.6 <= frac <= 1.0


class TestTable6Derivation:
    def test_table6_row_units(self):
        tpt, bdw = ssd().table6_row(512 * KIB)
        assert tpt == pytest.approx(ssd().read_files_per_second(512 * KIB))
        assert bdw == pytest.approx(tpt * 512 * KIB)

    def test_streams_scale_linearly(self):
        t1, b1 = ssd().table6_row(512 * KIB, streams=1)
        t4, b4 = ssd().table6_row(512 * KIB, streams=4)
        assert t4 == pytest.approx(4 * t1)
        assert b4 == pytest.approx(4 * b1)


class TestPresets:
    def test_ram_disk_faster_than_ssd(self):
        for size in TABLE3_SIZES:
            assert ram_disk().read_time(size) < ssd().read_time(size)

    def test_fanstore_metadata_is_ram_speed(self):
        """The §IV-C2 claim: metadata served from RAM, no server trip."""
        assert fanstore_local().stat_time() < 1e-6
        assert lustre().stat_time() > 100e-6

    def test_fanstore_wraps_custom_backend(self):
        base = ram_disk()
        fs = fanstore_local(base)
        assert "ramdisk" in fs.name
        assert fs.per_op_latency > base.per_op_latency
