"""``fanstore-top`` — aggregate per-rank metric snapshots and traces.

Points at the JSONL files the ranks exported (or a directory of them)
and prints one merged, cluster-wide table::

    $ fanstore-top obs-out/
    fanstore-top: 2 rank snapshot(s), 47 metric(s)
    metric                         type       value
    ...
    daemon.local_opens             counter    48
    daemon.phase.fetch_seconds     histogram  count=12 mean=18us p50=20us ...

``--per-rank`` adds each rank's own table under the merged one,
``--filter PREFIX`` restricts to one namespace, ``--json`` emits the
merged snapshot as JSONL for machines, ``--traces`` renders every trace
tree found in the inputs, and ``--assert-non-empty`` exits non-zero
when no metrics were found (what the CI observability job gates on).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Iterable, Sequence

from repro.obs.metrics import load_snapshots, merge_snapshots
from repro.obs.tracing import assemble_trace, format_trace, load_spans, trace_ids


def _expand(paths: Iterable[str]) -> list[Path]:
    """Files as given; directories expand to their ``*.jsonl``."""
    out: list[Path] = []
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            out.extend(sorted(p.glob("*.jsonl")))
        elif p.exists():
            out.append(p)
    return out


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="fanstore-top",
        description="Aggregate FanStore metric snapshots and traces "
                    "exported by the repro.obs layer.",
    )
    parser.add_argument(
        "paths", nargs="+",
        help="snapshot/trace JSONL files, or directories of *.jsonl",
    )
    parser.add_argument("--filter", default="",
                        help="only metrics whose name starts with PREFIX")
    parser.add_argument("--per-rank", action="store_true",
                        help="also print each rank's own table")
    parser.add_argument("--json", action="store_true",
                        help="emit the merged snapshot as JSONL")
    parser.add_argument("--traces", action="store_true",
                        help="render the trace trees found in the inputs")
    parser.add_argument("--assert-non-empty", action="store_true",
                        help="exit 1 when no metrics were found (CI gate)")
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    files = _expand(args.paths)
    if not files:
        print("fanstore-top: no input files found", file=sys.stderr)
        return 1
    snapshots = load_snapshots(files)
    merged = merge_snapshots(snapshots)

    if args.json:
        for line in merged.to_lines():
            print(line)
    else:
        print(
            f"fanstore-top: {len(snapshots)} rank snapshot(s), "
            f"{len(merged)} metric(s)"
        )
        print(merged.render(prefix=args.filter))
        if args.per_rank:
            for snap in snapshots:
                label = f" [{snap.label}]" if snap.label else ""
                print(f"\nrank {snap.rank}{label}:")
                print(snap.render(prefix=args.filter))

    if args.traces:
        spans = load_spans(files)
        ids = trace_ids(spans)
        print(f"\ntraces: {len(ids)}")
        for tid in ids:
            print(f"\ntrace {tid}:")
            print(format_trace(assemble_trace(spans, tid)))

    if args.assert_non_empty and len(merged) == 0:
        print("fanstore-top: merged snapshot is EMPTY", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via the CLI
    raise SystemExit(main())
