"""Future work (§VIII) — lossy compression in the CODAR style.

The paper closes by proposing SZ/ZFP-family lossy compression as the
next capacity lever. This bench runs that study on the scientific
datasets: compression ratio vs error bound for the SZ-like codec and
ratio vs rate for the ZFP-like codec, against the lossless ceiling.
"""

from __future__ import annotations

import io

import numpy as np
import pytest

from repro.bench.report import PaperComparison
from repro.compressors.lossy import SzLikeCodec, ZfpLikeCodec, max_abs_error, psnr
from repro.compressors.registry import get_compressor
from repro.datasets.synthetic import sample_files

BOUNDS = (1e-4, 1e-2, 1.0)


def _tokamak_signals(n_files: int = 8) -> np.ndarray:
    blobs = sample_files("tokamak", n_files, seed=31)
    arrays = [np.load(io.BytesIO(b))["signals"].astype(np.float64)
              for b in blobs]
    return np.concatenate([a.reshape(-1) for a in arrays])


def _astro_image(size: int = 96 * 1024) -> np.ndarray:
    blob = sample_files("astro", 1, size=size, seed=32)[0]
    return np.frombuffer(blob[2880:], dtype=">f4").astype(np.float64)


@pytest.fixture(scope="module", params=["tokamak", "astro"])
def science_array(request):
    if request.param == "tokamak":
        return request.param, _tokamak_signals()
    return request.param, _astro_image()


def test_lossy_ratio_vs_bound(benchmark, science_array, emit_report):
    name, data = science_array
    peak = float(np.max(np.abs(data))) or 1.0
    lossless = get_compressor("zlib-6")
    lossless_ratio = data.nbytes / len(lossless.compress(data.tobytes()))

    def sweep():
        rows = []
        for rel_bound in BOUNDS:
            codec = SzLikeCodec(rel_bound * peak)
            blob = codec.compress(data)
            out = codec.decompress(blob)
            rows.append(
                (
                    f"szlike rel={rel_bound:g}",
                    data.nbytes / len(blob),
                    max_abs_error(data, out) / peak,
                    psnr(data, out),
                )
            )
        zfp = ZfpLikeCodec(12)
        blob = zfp.compress(data)
        out = zfp.decompress(blob)
        rows.append(
            ("zfplike 12bpv", data.nbytes / len(blob),
             max_abs_error(data, out) / peak, psnr(data, out))
        )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    report = PaperComparison(
        f"Future work: lossy ({name})",
        "SZ/ZFP-style compression of scientific floats (§VIII / CODAR)",
        columns=["codec", "ratio", "rel L∞ err", "PSNR dB"],
    )
    report.add_row("zlib-6 (lossless ceiling)", round(lossless_ratio, 2),
                   0.0, "inf")
    for label, ratio, err, p in rows:
        report.add_row(label, round(ratio, 2), f"{err:.1e}",
                       "inf" if p == float("inf") else round(p, 1))
    report.add_note("every szlike row's error is certified ≤ its bound; "
                    "ratios beyond the lossless ceiling are the §VIII "
                    "opportunity")
    emit_report(report)

    sz_rows = rows[:-1]
    ratios = [r[1] for r in sz_rows]
    errors = [r[2] for r in sz_rows]
    # ratio grows monotonically with the bound...
    assert ratios == sorted(ratios)
    # ...errors honor their bounds...
    for (_, _, err, _), bound in zip(sz_rows, BOUNDS):
        assert err <= bound * (1 + 1e-9)
    # ...and a loose bound beats the lossless ceiling.
    assert ratios[-1] > lossless_ratio