"""Shared fixtures: tiny datasets, prepared partitions, live stores."""

from __future__ import annotations

import numpy as np
import pytest

from repro.compressors.registry import default_registry
from repro.datasets.synthetic import generate_dataset
from repro.fanstore.prepare import prepare_dataset
from repro.fanstore.store import FanStore


@pytest.fixture(scope="session")
def registry():
    """The 180-configuration default suite (built once)."""
    return default_registry()


@pytest.fixture(scope="session")
def raw_dataset_dir(tmp_path_factory):
    """A small on-disk EM-style dataset: 12 train files in 3 class dirs
    plus 3 validation files."""
    root = tmp_path_factory.mktemp("raw-dataset")
    train = root / "train"
    generate_dataset(
        "em", train, num_files=12, avg_file_size=6_000, num_dirs=3, seed=7
    )
    val = root / "val"
    generate_dataset(
        "em", val, num_files=3, avg_file_size=3_000, num_dirs=1, seed=99
    )
    # flatten val/cls0000/* to val/* — validation sets are usually flat
    for f in list((val / "cls0000").iterdir()):
        f.rename(val / f.name)
    (val / "cls0000").rmdir()
    return root


@pytest.fixture(scope="session")
def prepared_dataset(raw_dataset_dir, tmp_path_factory):
    """The raw dataset packaged into 3 partitions + broadcast val."""
    out = tmp_path_factory.mktemp("packed")
    return prepare_dataset(
        raw_dataset_dir / "train",
        out,
        num_partitions=3,
        compressor="zlib-1",
        broadcast_dir=raw_dataset_dir / "val",
        threads=2,
    )


@pytest.fixture()
def single_store(prepared_dataset):
    """A fresh single-node FanStore per test."""
    with FanStore(prepared_dataset) as fs:
        yield fs


@pytest.fixture(scope="session")
def sample_payloads():
    """Byte payloads with varied statistics for codec tests."""
    rng = np.random.default_rng(0)
    return {
        "empty": b"",
        "single": b"x",
        "zeros": bytes(4096),
        "ones": b"\xff" * 1023,
        "random": rng.bytes(4096),
        "text": (b"compression preserves every byte of the input. " * 64),
        "ramp": bytes(range(256)) * 8,
        "smooth": np.cumsum(
            rng.integers(-2, 3, 4096), dtype=np.int64
        ).astype(np.uint8).tobytes(),
        "sparse": bytes(2048) + rng.bytes(64) + bytes(2048),
    }
