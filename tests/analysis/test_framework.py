"""Framework mechanics: waiver parsing/scoping, report gating, CLI
exit codes."""

from __future__ import annotations

import json

import pytest

from repro.analysis.cli import main
from repro.analysis.core import Project, SourceFile, run_lint

from tests.analysis.conftest import rules_of


class TestWaivers:
    def test_inline_waiver_suppresses_same_line(self, tmp_path):
        f = tmp_path / "chaos.py"
        f.write_text(
            "import time\n"
            "t = time.time()  # lint: allow[determinism] wall clock is the subject here\n"
        )
        report = run_lint([f], root=tmp_path)
        assert report.ok
        assert len(report.waived) == 1
        assert report.waived[0].reason.startswith("wall clock")

    def test_comment_only_line_waives_next_line(self, tmp_path):
        f = tmp_path / "chaos.py"
        f.write_text(
            "import time\n"
            "# lint: allow[determinism] measured interval, not replay input\n"
            "t = time.time()\n"
        )
        report = run_lint([f], root=tmp_path)
        assert report.ok and len(report.waived) == 1

    def test_trailing_comment_does_not_waive_next_line(self, tmp_path):
        f = tmp_path / "chaos.py"
        f.write_text(
            "import time\n"
            "x = 1  # lint: allow[determinism] anchored to this line only\n"
            "t = time.time()\n"
        )
        report = run_lint([f], root=tmp_path)
        assert not report.ok

    def test_file_scope_waiver(self, tmp_path):
        f = tmp_path / "chaos.py"
        f.write_text(
            "# lint: file-allow[determinism] this module is wall-clock by design\n"
            "import time\n"
            "a = time.time()\n"
            "b = time.time()\n"
        )
        report = run_lint([f], root=tmp_path)
        assert report.ok and len(report.waived) == 2

    def test_waiver_without_reason_is_a_finding_and_inert(self, tmp_path):
        f = tmp_path / "chaos.py"
        f.write_text(
            "import time\n"
            "t = time.time()  # lint: allow[determinism]\n"
        )
        report = run_lint([f], root=tmp_path)
        rules = {x.rule for x in report.unwaived}
        assert "determinism" in rules  # not suppressed
        assert "waiver-syntax" in rules  # and the bare waiver is flagged

    def test_waiver_only_covers_listed_rules(self, tmp_path):
        f = tmp_path / "chaos.py"
        f.write_text(
            "import time\n"
            "t = time.time()  # lint: allow[lock-order] wrong rule id\n"
        )
        report = run_lint([f], root=tmp_path)
        assert [x.rule for x in report.unwaived] == ["determinism"]

    def test_marker_inside_string_is_not_a_waiver(self, tmp_path):
        f = tmp_path / "mod.py"
        f.write_text('MSG = "# lint: allow[x]"\nDOC = """# lint: nope"""\n')
        src = SourceFile(f)
        assert src.waivers == []
        assert src.bad_waivers == []

    def test_unparseable_file_reports_parse_finding(self, tmp_path):
        f = tmp_path / "broken.py"
        f.write_text("def f(:\n")
        report = run_lint([f], root=tmp_path)
        assert [x.rule for x in report.unwaived] == ["parse"]


class TestProject:
    def test_display_paths_relative_to_root(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        f = tmp_path / "pkg" / "m.py"
        f.write_text("x = 1\n")
        project = Project.load([tmp_path], root=tmp_path)
        assert [s.display for s in project] == ["pkg/m.py"]
        assert project.find("pkg/m.py") is not None


class TestCli:
    def test_exit_zero_on_clean_tree(self, tmp_path, capsys):
        (tmp_path / "m.py").write_text("x = 1\n")
        assert main([str(tmp_path), "--root", str(tmp_path)]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_exit_one_on_findings(self, tmp_path, capsys):
        (tmp_path / "chaos.py").write_text("import time\nt = time.time()\n")
        assert main([str(tmp_path), "--root", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "determinism" in out and "chaos.py:2" in out

    def test_exit_two_on_missing_path(self, tmp_path):
        assert main([str(tmp_path / "absent")]) == 2

    def test_exit_two_on_unknown_rule(self, tmp_path):
        (tmp_path / "m.py").write_text("x = 1\n")
        assert main([str(tmp_path), "--rules", "no-such-rule"]) == 2

    def test_rule_filter_limits_passes(self, tmp_path):
        f = tmp_path / "chaos.py"
        f.write_text("import time\nt = time.time()\n")
        assert main([str(tmp_path), "--rules", "lock-order"]) == 0

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in (
            "lock-order",
            "blocking-under-lock",
            "protocol-conformance",
            "error-conventions",
            "determinism",
            "metric-catalogue",
            "deprecated-facade",
        ):
            assert rule in out

    def test_json_format(self, tmp_path, capsys):
        (tmp_path / "chaos.py").write_text("import time\nt = time.time()\n")
        assert main([str(tmp_path), "--root", str(tmp_path), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"][0]["rule"] == "determinism"
        assert payload["findings"][0]["line"] == 2
