"""The data-preparation tool (§V-B).

A standalone, multi-threaded packager: it enumerates a dataset
directory, splits the file list into *partitions*, compresses every
file with the chosen compressor, and concatenates them in the Table I
representation. A directory can instead be marked *broadcast* — its
partition is replicated to every node at load time (the paper uses this
for validation data every node reads in full).

Output directory layout::

    <out>/manifest.json      # partition names, counts, compressor, sizes
    <out>/part-00000.fst     # scattered partitions, round-robin file split
    <out>/broadcast.fst      # optional replicated partition

Preparation happens once per dataset (the partitions live on the shared
file system and are reused across training runs).
"""

from __future__ import annotations

import argparse
import dataclasses
import hashlib
import json
import os
import sys
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from repro.compressors.registry import CompressorRegistry, default_registry
from repro.errors import FormatError, ManifestError
from repro.fanstore.layout import (
    DEFAULT_BLOCK_SIZE,
    FLAG_BROADCAST,
    FileStat,
    blob_crc32,
    write_partition,
)
from repro.fanstore.journal import atomic_open, atomic_replace
from repro.fanstore.metadata import normalize

MANIFEST_NAME = "manifest.json"
PARTITION_PATTERN = "part-{:05d}.fst"
BROADCAST_NAME = "broadcast.fst"
#: version 2 added integrity metadata (per-partition sha256 digests and
#: the manifest's self-digest); version-1 manifests still load.
MANIFEST_VERSION = 2
_SUPPORTED_VERSIONS = (1, MANIFEST_VERSION)

#: required manifest keys → accepted value types (None means the JSON
#: null is allowed, used by the optional broadcast partition).
_MANIFEST_SCHEMA: dict[str, tuple] = {
    "version": (int,),
    "partitions": (list,),
    "broadcast": (str, type(None)),
    "compressor": (str,),
    "num_files": (int,),
    "original_bytes": (int,),
    "compressed_bytes": (int,),
}


def sha256_file(path: Path, *, chunk_size: int = 1 << 20) -> str:
    """Streaming sha256 of a file (the whole-partition digest)."""
    digest = hashlib.sha256()
    with open(path, "rb") as fh:
        while True:
            chunk = fh.read(chunk_size)
            if not chunk:
                break
            digest.update(chunk)
    return digest.hexdigest()


def manifest_digest(manifest: dict) -> str:
    """Canonical content digest of a manifest dict, excluding the digest
    field itself (sorted keys, so formatting edits don't matter but any
    value edit does)."""
    content = {k: v for k, v in manifest.items() if k != "manifest_sha256"}
    canon = json.dumps(content, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canon.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class PreparedDataset:
    """Handle to a packaged dataset on the shared file system."""

    root: Path
    partitions: list[str]
    broadcast: str | None
    compressor: str
    num_files: int
    original_bytes: int
    compressed_bytes: int
    #: partition file name → sha256 of the whole file (empty for
    #: datasets prepared before manifest version 2)
    partition_digests: dict[str, str] = field(default_factory=dict)

    @property
    def ratio(self) -> float:
        """Whole-dataset compression ratio (original / packed payload)."""
        if self.compressed_bytes == 0:
            return 1.0
        return self.original_bytes / self.compressed_bytes

    def partition_paths(self) -> list[Path]:
        return [self.root / name for name in self.partitions]

    def broadcast_path(self) -> Path | None:
        return self.root / self.broadcast if self.broadcast else None

    def save_manifest(self) -> None:
        manifest = {
            "version": MANIFEST_VERSION,
            "partitions": self.partitions,
            "broadcast": self.broadcast,
            "compressor": self.compressor,
            "num_files": self.num_files,
            "original_bytes": self.original_bytes,
            "compressed_bytes": self.compressed_bytes,
            "partition_digests": self.partition_digests,
        }
        manifest["manifest_sha256"] = manifest_digest(manifest)
        atomic_replace(
            self.root / MANIFEST_NAME, json.dumps(manifest, indent=2)
        )

    @classmethod
    def load(cls, root: Path | str) -> "PreparedDataset":
        """Load and *validate* a manifest: schema, version, and (when
        recorded) the manifest's own digest. Every failure mode — a
        truncated file, a hand-edited value, a missing key — raises
        :class:`~repro.errors.ManifestError`, never ``KeyError``."""
        root = Path(root)
        manifest_path = root / MANIFEST_NAME
        if not manifest_path.exists():
            raise FormatError(f"no {MANIFEST_NAME} under {root}")
        try:
            manifest = json.loads(manifest_path.read_text())
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise ManifestError(
                f"{manifest_path}: truncated or corrupt manifest ({exc})"
            ) from exc
        if not isinstance(manifest, dict):
            raise ManifestError(
                f"{manifest_path}: manifest must be a JSON object, "
                f"got {type(manifest).__name__}"
            )
        version = manifest.get("version")
        if version not in _SUPPORTED_VERSIONS:
            raise ManifestError(
                f"unsupported manifest version {version!r} "
                f"(supported: {_SUPPORTED_VERSIONS})"
            )
        for key, types in _MANIFEST_SCHEMA.items():
            if key not in manifest:
                raise ManifestError(
                    f"{manifest_path}: missing manifest key {key!r}"
                )
            if not isinstance(manifest[key], types):
                raise ManifestError(
                    f"{manifest_path}: manifest key {key!r} has type "
                    f"{type(manifest[key]).__name__}, expected "
                    f"{'/'.join(t.__name__ for t in types)}"
                )
        if not all(isinstance(p, str) for p in manifest["partitions"]):
            raise ManifestError(
                f"{manifest_path}: partition names must be strings"
            )
        recorded = manifest.get("manifest_sha256")
        if recorded is not None and recorded != manifest_digest(manifest):
            raise ManifestError(
                f"{manifest_path}: manifest digest mismatch — the file "
                "was hand-edited or torn mid-write"
            )
        return cls(
            root=root,
            partitions=list(manifest["partitions"]),
            broadcast=manifest["broadcast"],
            compressor=manifest["compressor"],
            num_files=manifest["num_files"],
            original_bytes=manifest["original_bytes"],
            compressed_bytes=manifest["compressed_bytes"],
            partition_digests=dict(manifest.get("partition_digests") or {}),
        )

    def verify_partition_digests(self) -> list[str]:
        """Names of partition files whose current sha256 no longer
        matches the digest recorded at prepare time (files without a
        recorded digest are skipped, missing files are reported)."""
        mismatched = []
        for name, recorded in self.partition_digests.items():
            path = self.root / name
            if not path.exists() or sha256_file(path) != recorded:
                mismatched.append(name)
        return mismatched


def _enumerate_files(data_dir: Path) -> list[Path]:
    """Deterministic (sorted) recursive listing of regular files."""
    files = [p for p in sorted(data_dir.rglob("*")) if p.is_file()]
    if not files:
        raise FormatError(f"no files under {data_dir}")
    return files


def _stat_for(path: Path, original_size: int, *, flags: int = 0) -> FileStat:
    st = path.stat()
    return FileStat(
        st_size=original_size,
        st_blocks=(original_size + 511) // 512,
        st_blksize=DEFAULT_BLOCK_SIZE,
        st_mtime_ns=st.st_mtime_ns,
        st_ctime_ns=st.st_ctime_ns,
        st_atime_ns=st.st_atime_ns,
        st_uid=getattr(st, "st_uid", 0),
        st_gid=getattr(st, "st_gid", 0),
        flags=flags,
    )


#: candidate set for per-file "auto" selection: a fast/dense spread of
#: C-backed codecs (pure-Python members excluded on speed grounds).
AUTO_CANDIDATES = ("zlib-1", "zlib-6", "bz2-9", "lzma-0")


def _compress_files(
    files: Sequence[Path],
    rel_to: Path,
    compressor_name: str,
    registry: CompressorRegistry,
    threads: int,
    partition_id: int,
    flags: int = 0,
) -> list[tuple[str, int, FileStat, bytes]]:
    """Compress a file-list chunk with a thread pool (§V-B round-robin
    worker model), preserving input order in the output.

    ``compressor_name="auto"`` picks the smallest output per file from
    :data:`AUTO_CANDIDATES` — the 2-byte per-file compressor id of the
    Table I layout is what makes heterogeneous packing free.
    """
    if compressor_name == "auto":
        candidates = [registry.get(n) for n in AUTO_CANDIDATES]
    else:
        candidates = [registry.get(compressor_name)]

    def _one(path: Path) -> tuple[str, int, FileStat, bytes]:
        raw = path.read_bytes()
        packed = raw
        comp_id = 0  # RAW_ID: store raw when compression does not pay
        for compressor in candidates:
            attempt = compressor.compress(raw)
            if len(attempt) < len(packed):
                packed = attempt
                comp_id = compressor.compressor_id
        stat = dataclasses.replace(
            _stat_for(path, len(raw), flags=flags), partition_id=partition_id
        ).with_digest(blob_crc32(packed))
        rel = normalize(str(path.relative_to(rel_to)))
        return rel, comp_id, stat, packed

    if threads <= 1:
        return [_one(p) for p in files]
    with ThreadPoolExecutor(max_workers=threads) as pool:
        return list(pool.map(_one, files))


def prepare_dataset(
    data_dir: Path | str,
    out_dir: Path | str,
    *,
    num_partitions: int = 1,
    compressor: str = "zlib-1",
    broadcast_dir: Path | str | None = None,
    threads: int = 4,
    registry: CompressorRegistry | None = None,
) -> PreparedDataset:
    """Package ``data_dir`` into ``num_partitions`` compressed partitions.

    Files are assigned round-robin over the sorted listing (§V-B), so
    partitions are balanced in file count and — for homogeneous datasets
    — in bytes. ``broadcast_dir`` (optional, may live outside
    ``data_dir``) is packaged into a separate partition that every node
    loads in full.
    """
    data_dir = Path(data_dir)
    out_dir = Path(out_dir)
    if num_partitions < 1:
        raise FormatError(f"num_partitions must be >= 1, got {num_partitions}")
    registry = registry or default_registry()
    if compressor != "auto":
        registry.get(compressor)  # fail fast on unknown names
    out_dir.mkdir(parents=True, exist_ok=True)

    files = _enumerate_files(data_dir)
    assignments: list[list[Path]] = [[] for _ in range(num_partitions)]
    for i, path in enumerate(files):
        assignments[i % num_partitions].append(path)

    partition_names: list[str] = []
    partition_digests: dict[str, str] = {}
    total_original = 0
    total_compressed = 0
    num_files = 0
    for pid, chunk in enumerate(assignments):
        entries = _compress_files(
            chunk, data_dir, compressor, registry, threads, pid
        )
        name = PARTITION_PATTERN.format(pid)
        with atomic_open(out_dir / name) as fh:
            write_partition(entries, fh)
        partition_names.append(name)
        partition_digests[name] = sha256_file(out_dir / name)
        num_files += len(entries)
        total_original += sum(e[2].st_size for e in entries)
        total_compressed += sum(len(e[3]) for e in entries)

    broadcast_name: str | None = None
    if broadcast_dir is not None:
        broadcast_dir = Path(broadcast_dir)
        bfiles = _enumerate_files(broadcast_dir)
        bentries = _compress_files(
            bfiles,
            broadcast_dir.parent,
            compressor,
            registry,
            threads,
            num_partitions,
            flags=FLAG_BROADCAST,
        )
        broadcast_name = BROADCAST_NAME
        with atomic_open(out_dir / broadcast_name) as fh:
            write_partition(bentries, fh)
        partition_digests[broadcast_name] = sha256_file(out_dir / broadcast_name)
        num_files += len(bentries)
        total_original += sum(e[2].st_size for e in bentries)
        total_compressed += sum(len(e[3]) for e in bentries)

    prepared = PreparedDataset(
        root=out_dir,
        partitions=partition_names,
        broadcast=broadcast_name,
        compressor=compressor,
        num_files=num_files,
        original_bytes=total_original,
        compressed_bytes=total_compressed,
        partition_digests=partition_digests,
    )
    prepared.save_manifest()
    return prepared


def main(argv: Sequence[str] | None = None) -> int:
    """CLI: ``fanstore-prepare DATA OUT -p N -c zlib-6 [--broadcast DIR]``."""
    parser = argparse.ArgumentParser(
        prog="fanstore-prepare",
        description="Package a dataset into FanStore compressed partitions.",
    )
    parser.add_argument("data", type=Path, help="dataset directory")
    parser.add_argument("out", type=Path, help="output directory")
    parser.add_argument(
        "-p", "--partitions", type=int, default=1, help="partition count"
    )
    parser.add_argument(
        "-c", "--compressor", default="zlib-1", help="compressor name"
    )
    parser.add_argument(
        "--broadcast", type=Path, default=None,
        help="directory replicated to every node (validation data)",
    )
    parser.add_argument("-t", "--threads", type=int, default=os.cpu_count() or 4)
    args = parser.parse_args(argv)
    prepared = prepare_dataset(
        args.data,
        args.out,
        num_partitions=args.partitions,
        compressor=args.compressor,
        broadcast_dir=args.broadcast,
        threads=args.threads,
    )
    print(
        f"packed {prepared.num_files} files into {len(prepared.partitions)} "
        f"partition(s); ratio {prepared.ratio:.2f}"
    )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
