"""Cluster descriptions: nodes, machines, and placement analysis.

Presets reproduce the paper's §VII-A platforms (GTX, V100, CPU);
:mod:`~repro.cluster.placement` implements the Figure 1 capacity-vs-
efficiency analysis that motivates compression.
"""

from repro.cluster.machines import MACHINES, cpu, get_machine, gtx, v100
from repro.cluster.node import MachineSpec, NodeSpec
from repro.cluster.placement import (
    PlacementAnalysis,
    analyze_placement,
    max_efficient_nodes,
    min_nodes_for_data,
)

__all__ = [
    "NodeSpec",
    "MachineSpec",
    "gtx",
    "v100",
    "cpu",
    "MACHINES",
    "get_machine",
    "PlacementAnalysis",
    "analyze_placement",
    "min_nodes_for_data",
    "max_efficient_nodes",
]
