"""Figure 8 — application performance under the candidate compressors.

Modeled series: the selector's iteration-time prediction per compressor
for each case, compared with the paper's measured bars (lzsse8/lz4hc ≈
baseline; brotli/zling/lzma 1.1–2.3× slower on GTX; lz4hc at 95.3 % on
V100). Functional series: a real (tiny) training run through FanStore
with a fast vs a heavy compressor, wall-clock measured on this host.
"""

from __future__ import annotations

import pytest

from repro.bench.report import PaperComparison, ordering_preserved
from repro.datasets.synthetic import generate_dataset
from repro.fanstore.prepare import prepare_dataset
from repro.fanstore.store import FanStore
from repro.selection.cases import frnn_cpu, srgan_gtx, srgan_v100
from repro.selection.model import CompressorSelector
from repro.training.loader import SyncLoader, list_training_files

#: paper's Figure 8 relative performance (fraction of baseline).
PAPER_FIG8 = {
    "srgan-gtx": {
        "lzsse8": 1.0, "lz4hc": 1.0, "brotli": 0.90, "zling": 0.60,
        "lzma": 0.43,
    },
    "frnn-cpu": {"lzf": 1.0, "lzsse8": 1.0, "brotli": 1.0},
    # NOTE: the paper's prose gives brotli 24.6 % and lzma 72.8 % on
    # V100, which contradicts its own Table VII(c) costs (brotli 5.6 ms
    # < lzma 43 ms per file); we compare against the cost-consistent
    # ordering and flag the discrepancy in EXPERIMENTS.md.
    "srgan-v100": {"lz4hc": 0.953, "brotli": 0.70, "lzma": 0.25},
}


@pytest.fixture(
    scope="module", params=["srgan-gtx", "frnn-cpu", "srgan-v100"]
)
def case(request):
    return {
        "srgan-gtx": srgan_gtx,
        "frnn-cpu": frnn_cpu,
        "srgan-v100": srgan_v100,
    }[request.param]()


def test_fig8_modeled_series(benchmark, case, emit_report):
    selector = CompressorSelector(case.inputs)
    candidates = {c.name: c for c in case.candidates()}
    paper = PAPER_FIG8[case.name]

    def predict_all():
        return {
            name: selector.performance_fraction(
                cand, decompress_parallelism=1
            )
            for name, cand in candidates.items()
        }

    fractions = benchmark(predict_all)

    report = PaperComparison(
        f"Figure 8 ({case.name})",
        "fraction of baseline iteration rate under each compressor",
        columns=["compressor", "modeled", "paper"],
    )
    for name in candidates:
        report.add_row(
            name,
            f"{fractions[name]:.1%}",
            f"{paper[name]:.1%}" if name in paper else "-",
        )
    if case.name == "srgan-v100":
        report.add_note(
            "paper prose swaps brotli (24.6%) and lzma (72.8%) relative "
            "to its own Table VII(c) costs; modeled series follows the "
            "costs"
        )
    emit_report(report)

    common = [n for n in candidates if n in paper]
    if case.name == "frnn-cpu":
        # async hides everything: all at baseline (paper: identical bars)
        for name in common:
            assert fractions[name] > 0.99
    else:
        # the winner stays within a few percent of baseline…
        winner = "lzsse8" if case.name == "srgan-gtx" else "lz4hc"
        assert fractions[winner] > 0.9
        # …and heavy compressors cost real performance, in cost order.
        modeled_series = [fractions[n] for n in common]
        heavy = [n for n in common if n in ("zling", "lzma")]
        for name in heavy:
            assert fractions[name] < 0.75


@pytest.fixture(scope="module")
def functional_stores(tmp_path_factory):
    """The same dataset packed with a fast vs a heavy compressor."""
    raw = tmp_path_factory.mktemp("fig8-raw")
    generate_dataset("em", raw, num_files=12, avg_file_size=32 * 1024,
                     num_dirs=2, seed=8)
    # Both codecs must be C-backed for a meaningful wall-clock ratio on
    # this host (the pure-Python fastlz members measure the *format*,
    # not native decompression speed): zlib-1 plays the lzsse8 role,
    # bz2-9 the lzma role.
    fast = prepare_dataset(raw, tmp_path_factory.mktemp("fig8-fast"),
                           compressor="zlib-1", threads=2)
    heavy = prepare_dataset(raw, tmp_path_factory.mktemp("fig8-heavy"),
                            compressor="bz2-9", threads=2)
    with FanStore(fast) as fs_fast, FanStore(heavy) as fs_heavy:
        yield fs_fast, fs_heavy


def test_fig8_functional_decompression_cost(benchmark, functional_stores,
                                            emit_report):
    """Real wall-clock of an epoch's reads: fast-codec store vs
    heavy-codec store over identical bytes."""
    fs_fast, fs_heavy = functional_stores
    files = list_training_files(fs_fast.client)

    def epoch(store):
        loader = SyncLoader(store.client, files, batch_size=4, epochs=1)
        return sum(b.bytes_read for b in loader)

    total = benchmark.pedantic(
        epoch, args=(fs_fast,), rounds=5, iterations=1
    )
    assert total > 0
    fast_s = benchmark.stats.stats.mean

    import time

    t0 = time.perf_counter()
    for _ in range(5):
        epoch(fs_heavy)
    heavy_s = (time.perf_counter() - t0) / 5

    report = PaperComparison(
        "Figure 8 (functional)",
        "real epoch read time, fast vs heavy compressor (this host)",
        columns=["store", "epoch seconds", "rel"],
    )
    report.add_row("zlib-1-packed (fast codec)", f"{fast_s:.4f}", "1.0x")
    report.add_row("bz2-9-packed (heavy codec)", f"{heavy_s:.4f}",
                   f"{heavy_s / fast_s:.1f}x")
    report.add_note("decompress-on-open really is the knob: same bytes, "
                    "same store, only the codec differs")
    emit_report(report)
    assert heavy_s > fast_s