"""*deadline-propagation*: every blocking comm call on the fanstore hot
path states its time budget at the call site.

The gray-failure work (deadlines in the wire body, retries budgeted
against the remaining deadline) only holds up if no call quietly falls
back to a library default: a ``recv`` that inherits the communicator's
60-second default in the middle of a deadline-capped retry ladder is
exactly the stacking bug the deadline machinery exists to kill. This
pass walks every file under ``repro/fanstore`` and flags blocking
communicator round-trips — ``recv``, ``recv_with_status``, and the
collectives — that pass no explicit ``timeout``/deadline argument.

An explicit ``timeout=None`` is accepted: it states *on purpose, block
forever* (the daemon's idle serve loop does this), which is a visible
decision rather than an inherited default. ``try_recv`` and eager
``send`` never block and are out of scope.

The typed wire envelope is held to the same bar: a
``Request(...)`` constructor call in fanstore code without a
``deadline=`` keyword ships a request the server can never drop as
expired — every envelope must state its expiry (``deadline=None`` is,
again, a visible opt-out). Genuine exceptions use the standard waiver
syntax::

    comm.recv(peer, tag)  # lint: allow[deadline-propagation] reason
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.core import Finding, LintPass, Project, SourceFile

#: blocking communicator methods -> positional index of their timeout
#: parameter (after ``self``), per ``repro.comm.communicator``.
TIMEOUT_POS = {
    "recv": 2,  # (source, tag, timeout)
    "recv_with_status": 2,  # (source, tag, timeout)
    "barrier": 0,  # (timeout)
    "allgather": 1,  # (value, timeout)
    "gather": 2,  # (value, root, timeout)
    "scatter": 2,  # (values, root, timeout)
    "allreduce": 2,  # (value, op, timeout)
}


def _missing_timeout(call: ast.Call) -> str | None:
    """The blocking method name when ``call`` passes no explicit
    timeout; None when the call is out of scope or already explicit."""
    fn = call.func
    if not isinstance(fn, ast.Attribute):
        return None
    pos = TIMEOUT_POS.get(fn.attr)
    if pos is None:
        return None
    if any(kw.arg == "timeout" for kw in call.keywords):
        return None
    if any(kw.arg is None for kw in call.keywords):
        return None  # **kwargs may carry it; give the benefit of the doubt
    args = call.args
    if any(isinstance(a, ast.Starred) for a in args):
        return None  # *args may carry it
    if len(args) > pos:
        return None
    return fn.attr


class DeadlinePropagationPass(LintPass):
    rule = "deadline-propagation"
    title = "blocking fanstore comm calls carry an explicit timeout"

    def run(self, project: Project) -> Iterable[Finding]:
        findings: list[Finding] = []
        for src in project:
            if src.parse_error is not None:
                continue
            if "fanstore/" not in src.display.replace("\\", "/"):
                continue
            findings.extend(self._check_file(src))
        return findings

    def _check_file(self, src: SourceFile) -> list[Finding]:
        findings = []
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            if self._is_undeadlined_envelope(node):
                findings.append(
                    self.finding(
                        src,
                        node.lineno,
                        "Request envelope built without a deadline= "
                        "keyword; the server can never drop this request "
                        "as expired (pass deadline=None to state 'no "
                        "expiry' on purpose)",
                    )
                )
                continue
            method = _missing_timeout(node)
            if method is None:
                continue
            findings.append(
                self.finding(
                    src,
                    node.lineno,
                    f".{method}() without an explicit timeout inherits the "
                    "communicator default and breaks deadline budgeting; "
                    "pass the remaining deadline (or timeout=None to state "
                    "'block forever' on purpose)",
                )
            )
        return findings

    @staticmethod
    def _is_undeadlined_envelope(call: ast.Call) -> bool:
        fn = call.func
        name = fn.id if isinstance(fn, ast.Name) else (
            fn.attr if isinstance(fn, ast.Attribute) else None
        )
        if name != "Request":
            return False
        if any(kw.arg is None for kw in call.keywords):
            return False  # **kwargs may carry it
        return not any(kw.arg == "deadline" for kw in call.keywords)
