"""Small numpy neural networks for the functional end-to-end examples.

The paper's applications (SRGAN, FRNN's LSTM, ResNet-50) run on
TensorFlow; the I/O system only observes them as "compute for T_iter,
then exchange gradients". For the *functional* demos we still train
real (tiny) models so the full loop — FanStore read → decode → forward/
backward → allreduce → update → checkpoint — runs with real numbers:

- :class:`MLP` — fully connected classifier (softmax cross-entropy),
  the ResNet-50 stand-in for image-classification demos.
- :class:`LSTMClassifier` — a single-cell LSTM over short sequences,
  the FRNN stand-in for disruption prediction.

Both expose the flat-parameter/flat-gradient interface the data-
parallel trainer needs for allreduce.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ReproError


def _softmax(z: np.ndarray) -> np.ndarray:
    z = z - z.max(axis=1, keepdims=True)
    e = np.exp(z)
    return e / e.sum(axis=1, keepdims=True)


def softmax_cross_entropy(
    logits: np.ndarray, labels: np.ndarray
) -> tuple[float, np.ndarray]:
    """Mean loss and d(loss)/d(logits) for integer ``labels``."""
    if logits.ndim != 2:
        raise ReproError(f"logits must be 2-D, got shape {logits.shape}")
    n = logits.shape[0]
    probs = _softmax(logits)
    loss = float(-np.log(probs[np.arange(n), labels] + 1e-12).mean())
    grad = probs
    grad[np.arange(n), labels] -= 1.0
    return loss, grad / n


class MLP:
    """Fully connected ReLU network with SGD and flat-gradient access."""

    def __init__(self, sizes: list[int], *, seed: int = 0) -> None:
        if len(sizes) < 2:
            raise ReproError("MLP needs at least input and output sizes")
        rng = np.random.default_rng(seed)
        self.sizes = list(sizes)
        self.weights = [
            rng.standard_normal((a, b)).astype(np.float64) * np.sqrt(2.0 / a)
            for a, b in zip(sizes[:-1], sizes[1:])
        ]
        self.biases = [np.zeros(b) for b in sizes[1:]]
        self._cache: list[np.ndarray] = []

    # -- forward/backward --------------------------------------------------

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Logits for a (batch, features) input; caches activations."""
        self._cache = [x]
        h = x
        last = len(self.weights) - 1
        for i, (w, b) in enumerate(zip(self.weights, self.biases)):
            h = h @ w + b
            if i != last:
                h = np.maximum(h, 0.0)
            self._cache.append(h)
        return h

    def backward(self, grad_logits: np.ndarray) -> list[np.ndarray]:
        """Gradients (interleaved dW, db per layer) via backprop."""
        grads: list[np.ndarray] = []
        delta = grad_logits
        for i in reversed(range(len(self.weights))):
            a_prev = self._cache[i]
            grads.append(delta.sum(axis=0))  # db
            grads.append(a_prev.T @ delta)  # dW
            if i > 0:
                delta = delta @ self.weights[i].T
                delta[self._cache[i] <= 0.0] = 0.0
        grads.reverse()
        return grads

    def loss_and_gradients(
        self, x: np.ndarray, labels: np.ndarray
    ) -> tuple[float, np.ndarray]:
        """One training step's loss and FLAT gradient vector."""
        logits = self.forward(x)
        loss, grad_logits = softmax_cross_entropy(logits, labels)
        return loss, flatten(self.backward(grad_logits))

    # -- parameter plumbing ----------------------------------------------------

    def _param_list(self) -> list[np.ndarray]:
        out = []
        for w, b in zip(self.weights, self.biases):
            out.extend([w, b])
        return out

    def get_flat_params(self) -> np.ndarray:
        return flatten(self._param_list())

    def set_flat_params(self, flat: np.ndarray) -> None:
        unflatten_into(flat, self._param_list())

    def apply_gradients(self, flat_grads: np.ndarray, lr: float) -> None:
        """Plain SGD update from a flat gradient vector."""
        params = self._param_list()
        offset = 0
        for p in params:
            n = p.size
            p -= lr * flat_grads[offset : offset + n].reshape(p.shape)
            offset += n

    @property
    def num_params(self) -> int:
        return sum(p.size for p in self._param_list())


class LSTMClassifier:
    """One LSTM cell unrolled over a sequence, plus a linear head.

    Gradients are computed by full backprop-through-time; small on
    purpose (FRNN-flavoured demos over ~dozens of timesteps).
    """

    def __init__(
        self, input_size: int, hidden_size: int, num_classes: int, *, seed: int = 0
    ) -> None:
        rng = np.random.default_rng(seed)
        z = input_size + hidden_size
        scale = 1.0 / np.sqrt(z)
        self.input_size = input_size
        self.hidden_size = hidden_size
        # Gate weights packed [i, f, o, g] along the output axis.
        self.w_gates = rng.standard_normal((z, 4 * hidden_size)) * scale
        self.b_gates = np.zeros(4 * hidden_size)
        self.b_gates[hidden_size : 2 * hidden_size] = 1.0  # forget-gate bias
        self.w_head = rng.standard_normal((hidden_size, num_classes)) * scale
        self.b_head = np.zeros(num_classes)
        self._cache: dict | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Logits for a (batch, time, features) input."""
        if x.ndim != 3 or x.shape[2] != self.input_size:
            raise ReproError(f"expected (B, T, {self.input_size}), got {x.shape}")
        batch, steps, _ = x.shape
        hs = self.hidden_size
        h = np.zeros((batch, hs))
        c = np.zeros((batch, hs))
        cache = {"x": x, "h": [h], "c": [c], "gates": []}
        for t in range(steps):
            zcat = np.concatenate([x[:, t, :], h], axis=1)
            pre = zcat @ self.w_gates + self.b_gates
            i = _sigmoid(pre[:, :hs])
            f = _sigmoid(pre[:, hs : 2 * hs])
            o = _sigmoid(pre[:, 2 * hs : 3 * hs])
            g = np.tanh(pre[:, 3 * hs :])
            c = f * c + i * g
            h = o * np.tanh(c)
            cache["gates"].append((zcat, i, f, o, g))
            cache["h"].append(h)
            cache["c"].append(c)
        self._cache = cache
        return h @ self.w_head + self.b_head

    def loss_and_gradients(
        self, x: np.ndarray, labels: np.ndarray
    ) -> tuple[float, np.ndarray]:
        logits = self.forward(x)
        loss, dlogits = softmax_cross_entropy(logits, labels)
        cache = self._cache
        assert cache is not None
        hs = self.hidden_size
        h_last = cache["h"][-1]
        d_w_head = h_last.T @ dlogits
        d_b_head = dlogits.sum(axis=0)
        d_w_gates = np.zeros_like(self.w_gates)
        d_b_gates = np.zeros_like(self.b_gates)
        dh = dlogits @ self.w_head.T
        dc = np.zeros_like(dh)
        steps = len(cache["gates"])
        for t in reversed(range(steps)):
            zcat, i, f, o, g = cache["gates"][t]
            c_t = cache["c"][t + 1]
            c_prev = cache["c"][t]
            tanh_c = np.tanh(c_t)
            do = dh * tanh_c
            dc = dc + dh * o * (1.0 - tanh_c**2)
            di = dc * g
            df = dc * c_prev
            dg = dc * i
            dpre = np.concatenate(
                [
                    di * i * (1.0 - i),
                    df * f * (1.0 - f),
                    do * o * (1.0 - o),
                    dg * (1.0 - g**2),
                ],
                axis=1,
            )
            d_w_gates += zcat.T @ dpre
            d_b_gates += dpre.sum(axis=0)
            dz = dpre @ self.w_gates.T
            dh = dz[:, self.input_size :]
            dc = dc * f
        return loss, flatten([d_w_gates, d_b_gates, d_w_head, d_b_head])

    def _param_list(self) -> list[np.ndarray]:
        return [self.w_gates, self.b_gates, self.w_head, self.b_head]

    def get_flat_params(self) -> np.ndarray:
        return flatten(self._param_list())

    def set_flat_params(self, flat: np.ndarray) -> None:
        unflatten_into(flat, self._param_list())

    def apply_gradients(self, flat_grads: np.ndarray, lr: float) -> None:
        offset = 0
        for p in self._param_list():
            n = p.size
            p -= lr * flat_grads[offset : offset + n].reshape(p.shape)
            offset += n

    @property
    def num_params(self) -> int:
        return sum(p.size for p in self._param_list())


def _sigmoid(z: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-z))


def flatten(arrays: list[np.ndarray]) -> np.ndarray:
    """Concatenate arrays into one flat float64 vector."""
    return np.concatenate([a.ravel() for a in arrays]).astype(np.float64)


def unflatten_into(flat: np.ndarray, targets: list[np.ndarray]) -> None:
    """Scatter a flat vector back into the target arrays, in place."""
    total = sum(t.size for t in targets)
    if flat.size != total:
        raise ReproError(f"flat vector has {flat.size} values, need {total}")
    offset = 0
    for t in targets:
        n = t.size
        t[...] = flat[offset : offset + n].reshape(t.shape)
        offset += n
