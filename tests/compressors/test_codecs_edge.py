"""Edge cases and error paths of the from-scratch codecs."""

from __future__ import annotations

import pytest

from repro.compressors.base import read_uvarint, write_uvarint
from repro.compressors.filters import BitshuffleFilter, TransposeFilter
from repro.compressors.huffman import HuffmanCodec
from repro.compressors.lz77 import Lz77Codec
from repro.compressors.lzw import LzwCodec
from repro.compressors.rle import RleCodec
from repro.compressors.stdlib import Bz2Codec, LzmaCodec, ZlibCodec
from repro.errors import CompressionError


class TestParameterValidation:
    def test_lzw_max_bits_bounds(self):
        with pytest.raises(ValueError):
            LzwCodec(9)
        with pytest.raises(ValueError):
            LzwCodec(21)

    def test_lz77_level_bounds(self):
        with pytest.raises(ValueError):
            Lz77Codec(0)
        with pytest.raises(ValueError):
            Lz77Codec(13)

    def test_stdlib_level_bounds(self):
        with pytest.raises(ValueError):
            ZlibCodec(0)
        with pytest.raises(ValueError):
            Bz2Codec(10)
        with pytest.raises(ValueError):
            LzmaCodec(10)

    def test_filter_width_bounds(self):
        with pytest.raises(ValueError):
            TransposeFilter(1)
        with pytest.raises(ValueError):
            TransposeFilter(256)


class TestCorruptInput:
    def test_rle_truncated_run(self):
        with pytest.raises(CompressionError):
            RleCodec().decompress(write_uvarint(10) + b"\x85")

    def test_rle_length_mismatch(self):
        # header says 100 bytes but stream encodes 3
        payload = write_uvarint(100) + b"\x02abc"
        with pytest.raises(CompressionError):
            RleCodec().decompress(payload)

    def test_lzw_truncated_stream(self):
        codec = LzwCodec(12)
        good = codec.compress(b"hello hello hello")
        with pytest.raises(CompressionError):
            codec.decompress(good[: len(good) // 2])

    def test_fastlz_bad_offset(self):
        codec = Lz77Codec(3)
        # literal of 0, then a match with offset 0 (invalid)
        bad = write_uvarint(8) + bytes([0x01, ord("a"), 0x00, 0x00])
        with pytest.raises(CompressionError):
            codec.decompress(bad)

    def test_fastlz_truncated_literals(self):
        bad = write_uvarint(100) + bytes([0xF0]) + b"ab"
        with pytest.raises(CompressionError):
            Lz77Codec(1).decompress(bad)

    def test_huffman_truncated_table(self):
        with pytest.raises(CompressionError):
            HuffmanCodec().decompress(write_uvarint(5) + b"\x00" * 10)

    def test_stdlib_corrupt(self):
        for codec in (ZlibCodec(1), Bz2Codec(1), LzmaCodec(0)):
            with pytest.raises(CompressionError):
                codec.decompress(b"this is not a valid stream")

    def test_uvarint_truncated(self):
        with pytest.raises(CompressionError):
            read_uvarint(b"\xff\xff")

    def test_uvarint_overlong(self):
        with pytest.raises(CompressionError):
            read_uvarint(b"\xff" * 11)

    def test_uvarint_negative_rejected(self):
        with pytest.raises(ValueError):
            write_uvarint(-1)

    def test_bitshuffle_bad_pad(self):
        with pytest.raises(CompressionError):
            BitshuffleFilter().backward(bytes([9]) + bytes(8))

    def test_bitshuffle_empty(self):
        with pytest.raises(CompressionError):
            BitshuffleFilter().backward(b"")

    def test_shuffle_bad_tail(self):
        with pytest.raises(CompressionError):
            TransposeFilter(4).backward(bytes([4]) + bytes(8))


class TestSpecificBehaviour:
    def test_rle_compresses_runs_hard(self):
        data = b"\x00" * 10_000
        out = RleCodec().compress(data)
        assert len(out) < 200

    def test_lzw_dictionary_reset_roundtrip(self):
        """Enough distinct digrams to overflow a 12-bit dictionary and
        force CLEAR codes mid-stream."""
        data = bytes((i * 7 + j) % 256 for i in range(256) for j in range(64))
        codec = LzwCodec(12)
        assert codec.decompress(codec.compress(data)) == data

    def test_lzw_kwkwk_case(self):
        """The classic aaaa... input exercises the KwKwK special case."""
        codec = LzwCodec(12)
        for n in (1, 2, 3, 4, 5, 10, 257, 1000):
            data = b"a" * n
            assert codec.decompress(codec.compress(data)) == data

    def test_huffman_single_symbol(self):
        codec = HuffmanCodec()
        data = b"z" * 500
        out = codec.compress(data)
        assert codec.decompress(out) == data
        # 1 bit/symbol + 128-byte table + header
        assert len(out) < 200

    def test_fastlz_long_match_extension(self):
        """Matches beyond 19 bytes need 255-extension bytes."""
        codec = Lz77Codec(3)
        data = b"pattern!" * 1000
        out = codec.compress(data)
        assert codec.decompress(out) == data
        assert len(out) < len(data) // 10

    def test_fastlz_overlapping_copy(self):
        """offset < match length forces the byte-wise overlap path."""
        codec = Lz77Codec(3)
        data = b"ab" * 5000
        assert codec.decompress(codec.compress(data)) == data

    def test_fastlz_incompressible_expansion_bounded(self):
        import os

        data = os.urandom(10_000)
        out = Lz77Codec(1).compress(data)
        # literals-only framing: ~1 control byte per 15+255·k literals
        assert len(out) < len(data) * 1.01 + 32

    def test_zlib_levels_order_ratio(self):
        data = (b"the quick brown fox " * 400)
        assert len(ZlibCodec(9).compress(data)) <= len(ZlibCodec(1).compress(data))
