"""The compressor-selection algorithm (§VI-B, Equations 1–3).

Given application parameters, measured FanStore I/O performance, and
per-compressor (ratio, decompression-cost) characteristics, pick the
compressor with the highest compression ratio whose decompression cost
still preserves baseline training performance:

- **Synchronous I/O** (Eq. 1): decompression must cost less than the
  read time saved by moving fewer bytes —
  ``C/Tpt_decom + T_read(C, S) < T_read(C, S′)``.
- **Asynchronous I/O** (Eq. 2): I/O of iteration *i* hides behind the
  compute of iteration *i−1*, so the whole iteration is the budget —
  ``C/Tpt_decom + T_read(C, S) < T_iter``.
- ``T_read`` (Eq. 3) is the **max** of the throughput bound (files/s)
  and the bandwidth bound (MB/s) — the non-linearity of §VI-A.

Decompression runs on every training process on the node, so the
per-file budget scales by ``parallelism`` (the worked example in
§VII-E1: 54 568 µs · 4 / 256 = 852 µs per file).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.errors import SelectionError


@dataclass(frozen=True)
class IoPerformance:
    """One row of Table VI: FanStore read performance at one file size."""

    tpt_read: float  # files/s
    bdw_read: float  # bytes/s

    def __post_init__(self) -> None:
        if self.tpt_read <= 0 or self.bdw_read <= 0:
            raise SelectionError("I/O performance figures must be positive")


def t_read(c_batch: int, s_batch: float, perf: IoPerformance) -> float:
    """Equation 3: ``max(C/Tpt, S/Bdw)`` seconds for one batch."""
    if c_batch <= 0:
        raise SelectionError(f"c_batch must be positive, got {c_batch}")
    if s_batch < 0:
        raise SelectionError(f"s_batch must be non-negative, got {s_batch}")
    return max(c_batch / perf.tpt_read, s_batch / perf.bdw_read)


@dataclass(frozen=True)
class CompressorCandidate:
    """One compressor as the algorithm sees it."""

    name: str
    ratio: float  # compression ratio on the target dataset
    decompress_cost: float  # seconds per (average-sized) file

    def __post_init__(self) -> None:
        if self.ratio < 1.0:
            raise SelectionError(
                f"{self.name}: ratio must be >= 1, got {self.ratio}"
            )
        if self.decompress_cost < 0:
            raise SelectionError(f"{self.name}: negative decompression cost")


@dataclass(frozen=True)
class SelectionInputs:
    """Everything Equations 1–3 consume (the paper's Tables V + VI).

    ``s_batch_uncompressed`` is S′ in bytes; ``perf_uncompressed`` /
    ``perf_compressed`` are the Table VI rows at the raw and expected-
    compressed file sizes respectively; ``parallelism`` is the number of
    decompressing processes per node (GPUs/I-O threads);
    ``required_ratio`` is the capacity constraint |T| / (N·M) — a
    candidate below it cannot make the dataset fit at the target scale.
    """

    io_mode: str  # "sync" or "async"
    c_batch: int
    s_batch_uncompressed: float
    perf_uncompressed: IoPerformance
    perf_compressed: IoPerformance
    t_iter: float = 0.0  # required for async
    parallelism: int = 1
    required_ratio: float = 1.0

    def __post_init__(self) -> None:
        if self.io_mode not in ("sync", "async"):
            raise SelectionError(f"io_mode must be sync|async, got {self.io_mode}")
        if self.io_mode == "async" and self.t_iter <= 0:
            raise SelectionError("async selection requires t_iter > 0")
        if self.parallelism < 1:
            raise SelectionError("parallelism must be >= 1")
        if self.required_ratio < 1.0:
            raise SelectionError("required_ratio must be >= 1")


@dataclass(frozen=True)
class Verdict:
    """Why one candidate passed or failed."""

    candidate: CompressorCandidate
    budget_per_file: float  # allowed decompression seconds per file
    meets_performance: bool
    meets_capacity: bool

    @property
    def accepted(self) -> bool:
        return self.meets_performance and self.meets_capacity


@dataclass(frozen=True)
class SelectionResult:
    """The algorithm's output: the winner plus the full audit trail.

    When no candidate satisfies Eq. 1/2, ``selected`` is None and
    ``fallback`` carries the paper's §VII-E3 compromise: the fastest-
    decompressing candidate with a non-trivial ratio, accepted at a
    quantified performance loss (SRGAN/V100 picks lz4hc this way).
    """

    selected: CompressorCandidate | None
    verdicts: list[Verdict] = field(default_factory=list)
    fallback: CompressorCandidate | None = None

    @property
    def accepted(self) -> list[CompressorCandidate]:
        return [v.candidate for v in self.verdicts if v.accepted]

    @property
    def choice(self) -> CompressorCandidate | None:
        """The operative pick: strict winner, else the fallback."""
        return self.selected or self.fallback


class CompressorSelector:
    """Runs Equations 1–3 over a candidate set."""

    def __init__(self, inputs: SelectionInputs) -> None:
        self.inputs = inputs

    # -- budgets ----------------------------------------------------------

    def read_time_uncompressed(self) -> float:
        """T_read(C, S′): the baseline batch read time."""
        i = self.inputs
        return t_read(i.c_batch, i.s_batch_uncompressed, i.perf_uncompressed)

    def read_time_compressed(self, ratio: float) -> float:
        """T_read(C, S) with S = S′/ratio."""
        if ratio < 1.0:
            raise SelectionError(f"ratio must be >= 1, got {ratio}")
        i = self.inputs
        return t_read(
            i.c_batch, i.s_batch_uncompressed / ratio, i.perf_compressed
        )

    def budget_per_file(self, ratio: float) -> float:
        """Allowed decompression seconds per file for a compressor of
        the given ratio (≤ 0 means compression cannot pay at all)."""
        i = self.inputs
        if i.io_mode == "sync":
            total = self.read_time_uncompressed() - self.read_time_compressed(ratio)
        else:
            total = i.t_iter - self.read_time_compressed(ratio)
        return total * i.parallelism / i.c_batch

    # -- selection -----------------------------------------------------------

    def evaluate(self, candidate: CompressorCandidate) -> Verdict:
        budget = self.budget_per_file(candidate.ratio)
        return Verdict(
            candidate=candidate,
            budget_per_file=budget,
            meets_performance=candidate.decompress_cost < budget,
            meets_capacity=candidate.ratio >= self.inputs.required_ratio,
        )

    def select(
        self,
        candidates: Sequence[CompressorCandidate],
        *,
        min_fallback_ratio: float = 1.5,
    ) -> SelectionResult:
        """§VI-B: filter by Eq. 1/2, then take the highest ratio.

        Decompression cost breaks ratio ties (cheaper wins). If no
        candidate meets both constraints, the result's ``fallback`` is
        the fastest candidate whose ratio is still non-trivial
        (≥ ``min_fallback_ratio``) — the paper's §VII-E3 move, where
        lz4hc is taken on V100 at a 4.7 % performance cost rather than
        lz4fast with its ratio ≈ 1.
        """
        if not candidates:
            raise SelectionError("no candidates supplied")
        verdicts = [self.evaluate(c) for c in candidates]
        accepted = [v.candidate for v in verdicts if v.accepted]
        selected = (
            max(accepted, key=lambda c: (c.ratio, -c.decompress_cost))
            if accepted
            else None
        )
        fallback = None
        if selected is None:
            worthwhile = [c for c in candidates if c.ratio >= min_fallback_ratio]
            if worthwhile:
                # deterministic under candidate reordering: cheapest
                # decompression, then highest ratio as the tie-break
                fallback = min(
                    worthwhile, key=lambda c: (c.decompress_cost, -c.ratio)
                )
        return SelectionResult(
            selected=selected, verdicts=verdicts, fallback=fallback
        )

    # -- performance prediction (Figure 8's modeled series) -----------------

    def predicted_iteration_time(
        self,
        candidate: CompressorCandidate | None,
        *,
        decompress_parallelism: int | None = None,
    ) -> float:
        """Per-iteration time with ``candidate`` (None = uncompressed).

        Sync I/O: swap the baseline's read term for the compressed read
        plus the batch's decompression; async I/O: the iteration slows
        only if (read + decompression) overruns the compute it hides
        behind. ``decompress_parallelism`` defaults to the inputs'
        parallelism; the paper's *measured* Figure 8 slowdowns match
        single-threaded decompression (the Python/Keras I/O threads
        serialize on decompression), so the Fig. 8 benchmark passes 1.
        """
        i = self.inputs
        if i.t_iter <= 0:
            raise SelectionError("predicted_iteration_time requires t_iter")
        if candidate is None:
            return i.t_iter
        par = decompress_parallelism or i.parallelism
        decompress_total = i.c_batch * candidate.decompress_cost / par
        io_time = self.read_time_compressed(candidate.ratio) + decompress_total
        if i.io_mode == "sync":
            # Clamp: with inconsistent profiling inputs (a T_iter smaller
            # than the baseline read it supposedly contains) the swap
            # could go non-positive; the compute part of the iteration
            # can never be eliminated below zero.
            predicted = i.t_iter - self.read_time_uncompressed() + io_time
            return max(predicted, io_time, 1e-12)
        # async: the baseline iteration already hides I/O; only the excess
        # beyond the compute phase surfaces.
        return max(i.t_iter, io_time)

    def performance_fraction(
        self,
        candidate: CompressorCandidate | None,
        *,
        decompress_parallelism: int | None = None,
    ) -> float:
        """Baseline/with-compression iteration-time ratio (1.0 = no loss)."""
        predicted = self.predicted_iteration_time(
            candidate, decompress_parallelism=decompress_parallelism
        )
        return self.inputs.t_iter / predicted if predicted > 0 else 0.0
