"""I/O trace recording, persistence, and model replay."""

from __future__ import annotations

import pytest

from repro.errors import ReproError
from repro.simnet.devices import fuse_over_ssd, lustre, ssd
from repro.simnet.trace import IoTrace, TraceEvent, TraceRecorder, replay
from repro.training.loader import SyncLoader, list_training_files


@pytest.fixture()
def recorder(single_store):
    return TraceRecorder(single_store.client)


class TestRecording:
    def test_read_records_open_read_close(self, recorder, single_store):
        path = f"cls0000/{single_store.client.listdir('cls0000')[0]}"
        data = recorder.read_file(path)
        ops = [e.op for e in recorder.trace]
        assert ops == ["open", "read", "close"]
        read_event = recorder.trace.events[1]
        assert read_event.nbytes == len(data)
        assert read_event.duration >= 0
        assert read_event.path == path

    def test_metadata_and_write_ops(self, recorder):
        recorder.listdir("")
        recorder.stat("cls0000")
        recorder.write_file("out/traced.bin", b"abc")
        assert recorder.trace.op_counts()["listdir"] == 1
        assert recorder.trace.op_counts()["stat"] == 1
        assert recorder.trace.op_counts()["write"] == 1
        assert recorder.trace.total_bytes("write") == 3

    def test_timestamps_monotone(self, recorder, single_store):
        for name in single_store.client.listdir("cls0000"):
            recorder.read_file(f"cls0000/{name}")
        stamps = [e.timestamp for e in recorder.trace]
        assert stamps == sorted(stamps)

    def test_loader_over_recorder_traces_an_epoch(self, recorder,
                                                  single_store):
        files = list_training_files(single_store.client)
        loader = SyncLoader(recorder, files, batch_size=5, epochs=1)
        n_batches = sum(1 for _ in loader)
        counts = recorder.trace.op_counts()
        assert counts["read"] == n_batches * 5
        assert recorder.trace.total_bytes("read") > 0


class TestPersistence:
    def test_jsonl_roundtrip(self, recorder, single_store, tmp_path):
        path = f"cls0000/{single_store.client.listdir('cls0000')[0]}"
        recorder.read_file(path)
        out = tmp_path / "trace.jsonl"
        recorder.trace.save(out)
        loaded = IoTrace.load(out)
        assert len(loaded) == len(recorder.trace)
        assert loaded.events == recorder.trace.events

    def test_bad_op_rejected(self):
        with pytest.raises(ReproError):
            TraceEvent.from_json(
                '{"op": "fork", "path": "x", "nbytes": 0, '
                '"duration": 0, "timestamp": 0}'
            )

    def test_summary_renders(self, recorder, single_store):
        recorder.read_file(
            f"cls0000/{single_store.client.listdir('cls0000')[0]}"
        )
        text = recorder.trace.summary()
        assert "read" in text and "events" in text


class TestReplay:
    def test_replay_orders_devices_correctly(self, recorder, single_store):
        """The same trace must cost more on slower devices — the
        cross-validation between measured and modeled halves."""
        files = list_training_files(single_store.client)
        for f in files:
            recorder.read_file(f)
        t_ssd = replay(recorder.trace, ssd())
        t_fuse = replay(recorder.trace, fuse_over_ssd())
        t_lustre = replay(recorder.trace, lustre())
        assert t_ssd < t_fuse < t_lustre

    def test_replay_scales_with_bytes(self):
        trace = IoTrace(
            [
                TraceEvent("read", "a", 1_000_000, 0.0, 0.0),
                TraceEvent("read", "b", 2_000_000, 0.0, 0.0),
            ]
        )
        single = IoTrace([trace.events[0]])
        assert replay(trace, ssd()) > replay(single, ssd())

    def test_metadata_ops_cost_stat_time(self):
        trace = IoTrace([TraceEvent("stat", "a", 0, 0.0, 0.0)] * 10)
        assert replay(trace, lustre()) == pytest.approx(
            10 * lustre().stat_time()
        )

    def test_writes_use_write_bandwidth(self):
        trace = IoTrace([TraceEvent("write", "a", 10_000_000, 0.0, 0.0)])
        model = ssd()
        assert replay(trace, model) == pytest.approx(
            model.write_time(10_000_000)
        )
