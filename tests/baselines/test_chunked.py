"""The chunk-permute baseline: partial views, ring permutation,
eventual coverage."""

from __future__ import annotations

import pytest

from repro.baselines.chunked import ChunkedStore
from repro.comm.launcher import run_parallel
from repro.errors import ReproError


def make_chunk(rank: int, files_per_rank: int = 4) -> dict[str, bytes]:
    return {
        f"part{rank}/f{i}": f"data-{rank}-{i}".encode()
        for i in range(files_per_rank)
    }


class TestLocalSampling:
    def test_batches_come_only_from_local_chunk(self):
        def body(comm):
            store = ChunkedStore(comm, make_chunk(comm.rank))
            batch = store.sample_batch(8, seed=1)
            return all(p.startswith(f"part{comm.rank}/") for p, _ in batch)

        assert all(run_parallel(body, 3, timeout=30))

    def test_empty_chunk_rejected(self):
        def body(comm):
            store = ChunkedStore(comm, {})
            store.sample_batch(1)

        from repro.comm.launcher import ParallelFailure

        with pytest.raises(ParallelFailure):
            run_parallel(body, 2, timeout=30)

    def test_bad_permute_every(self):
        def body(comm):
            ChunkedStore(comm, make_chunk(comm.rank), permute_every=0)

        from repro.comm.launcher import ParallelFailure

        with pytest.raises(ParallelFailure):
            run_parallel(body, 2, timeout=30)


class TestPermutation:
    def test_ring_shift_moves_chunks(self):
        def body(comm):
            store = ChunkedStore(comm, make_chunk(comm.rank))
            store.permute()
            owners = {p.split("/")[0] for p in store.local_paths()}
            return owners

        results = run_parallel(body, 3, timeout=30)
        # each rank now holds its left neighbor's chunk
        assert results[0] == {"part2"}
        assert results[1] == {"part0"}
        assert results[2] == {"part1"}

    def test_end_epoch_triggers_on_schedule(self):
        def body(comm):
            store = ChunkedStore(comm, make_chunk(comm.rank), permute_every=2)
            fired = [store.end_epoch() for _ in range(5)]
            return (fired, store.stats.permutations)

        results = run_parallel(body, 2, timeout=30)
        for fired, permutations in results:
            assert fired == [False, True, False, True, False]
            assert permutations == 2

    def test_permutation_traffic_accounted(self):
        def body(comm):
            store = ChunkedStore(comm, make_chunk(comm.rank))
            bytes_before = store.stats.permuted_bytes
            store.permute()
            return store.stats.permuted_bytes - bytes_before

        moved = run_parallel(body, 2, timeout=30)
        assert all(m > 0 for m in moved)

    def test_full_rotation_restores_global_content(self):
        size = 3

        def body(comm):
            chunk = make_chunk(comm.rank)
            store = ChunkedStore(comm, chunk)
            seen = set(store.local_paths())
            for _ in range(size - 1):
                store.permute()
                seen |= set(store.local_paths())
            return sorted(seen)

        results = run_parallel(body, size, timeout=30)
        everything = sorted(
            p for r in range(size) for p in make_chunk(r)
        )
        assert all(r == everything for r in results)


class TestCoverage:
    def test_coverage_grows_to_one(self):
        def body(comm):
            store = ChunkedStore(comm, make_chunk(comm.rank), permute_every=4)
            return [store.coverage_after(e) for e in (0, 4, 8, 100)]

        results = run_parallel(body, 4, timeout=30)
        for cov in results:
            assert cov[0] == pytest.approx(0.25)
            assert cov[1] == pytest.approx(0.5)
            assert cov[-1] == 1.0

    def test_partial_view_is_the_tradeoff(self):
        """The §III criticism quantified: before the first permutation a
        node has seen only 1/N of the data, while FanStore's global view
        is immediate."""
        def body(comm):
            store = ChunkedStore(comm, make_chunk(comm.rank), permute_every=4)
            return store.coverage_after(3)

        assert run_parallel(body, 4, timeout=30) == [0.25] * 4
