"""The SSD-mode PartitionBackend: pread from partition files in place."""

from __future__ import annotations

import pytest

from repro.comm.launcher import run_parallel
from repro.errors import FileNotFoundInStoreError
from repro.fanstore.backend import PartitionBackend
from repro.fanstore.store import FanStore


class TestStandalone:
    def test_register_and_pread(self, tmp_path):
        f = tmp_path / "part.bin"
        f.write_bytes(b"HEADERpayload-oneEXTRApayload-two")
        backend = PartitionBackend()
        backend.register("a", f, 6, 11)
        backend.register("b", f, 22, 11)
        assert backend.get("a") == b"payload-one"
        assert backend.get("b") == b"payload-two"
        assert "a" in backend and "c" not in backend
        assert len(backend) == 2
        assert backend.resident_bytes == 22
        backend.close()

    def test_overlay_writes(self, tmp_path):
        backend = PartitionBackend()
        backend.put("runtime/out", b"written")
        assert backend.get("runtime/out") == b"written"
        assert len(backend) == 1

    def test_missing_raises(self):
        with pytest.raises(FileNotFoundInStoreError):
            PartitionBackend().get("nope")


class TestWithStore:
    def test_single_node_reads_by_pread(self, prepared_dataset,
                                        raw_dataset_dir):
        backend = PartitionBackend()
        with FanStore(prepared_dataset, backend=backend) as fs:
            originals = {
                str(p.relative_to(raw_dataset_dir / "train")): p.read_bytes()
                for p in sorted((raw_dataset_dir / "train").rglob("*"))
                if p.is_file()
            }
            for rel, raw in originals.items():
                assert fs.client.read_file(rel) == raw
            # data stayed in the partition files (no blob copies):
            # resident accounting equals the packed payload bytes
            assert backend.resident_bytes <= prepared_dataset.compressed_bytes
        backend.close()

    def test_writes_still_work(self, prepared_dataset):
        backend = PartitionBackend()
        with FanStore(prepared_dataset, backend=backend) as fs:
            fs.client.write_file("out/x.bin", b"overlayed")
            assert fs.client.read_file("out/x.bin") == b"overlayed"
        backend.close()

    def test_multinode_partition_backends(self, prepared_dataset):
        def body(comm):
            backend = PartitionBackend()
            try:
                with FanStore(prepared_dataset, comm=comm,
                              backend=backend) as fs:
                    total = 0
                    for rec in fs.daemon.metadata.walk_files():
                        total += len(fs.client.read_file(rec.path))
                    return total
            finally:
                backend.close()

        totals = run_parallel(body, 3, timeout=60)
        assert len(set(totals)) == 1

    def test_matches_ram_backend_bytes(self, prepared_dataset):
        backend = PartitionBackend()
        with FanStore(prepared_dataset, backend=backend) as on_disk, \
                FanStore(prepared_dataset) as in_ram:
            for rec in in_ram.daemon.metadata.walk_files():
                assert on_disk.client.read_file(rec.path) == \
                    in_ram.client.read_file(rec.path)
        backend.close()
