"""Compressor registry: the suite of named configurations with stable ids.

The paper evaluates "over 180 compressor and option combinations"
(lzbench's codecs × levels × filters). This registry reproduces that
surface: 36 codecs × 5 filter variants = 180 configurations, each a
:class:`~repro.compressors.base.Compressor` with a stable 2-byte id —
the integer FanStore records per file in the partition layout (Table I).

Id 0 is reserved for *raw* (uncompressed passthrough, distinct from the
``memcpy`` suite member only in that it is the implicit default when no
compressor was applied). Ids are assigned deterministically in build
order, so partitions written by one process decode in any other.

Paper compressor names (lzsse8, lz4hc, brotli, …) that have no stdlib
implementation resolve via :data:`PAPER_ALIASES` to the closest member
of the suite, so code written against the paper's vocabulary runs
unchanged; their *performance characteristics* (Table IV/VII constants)
live separately in :mod:`repro.compressors.profiles`.
"""

from __future__ import annotations

import threading
from typing import Iterable

from repro.compressors.base import Codec, Compressor, Filter
from repro.compressors.filters import (
    BitshuffleFilter,
    DeltaFilter,
    TransposeFilter,
    XorFilter,
)
from repro.compressors.huffman import HuffmanCodec
from repro.compressors.lz77 import Lz77Codec
from repro.compressors.lzw import LzwCodec
from repro.compressors.null import NullCodec
from repro.compressors.rle import RleCodec
from repro.compressors.stdlib import Bz2Codec, LzmaCodec, ZlibCodec
from repro.errors import UnknownCompressorError

#: id reserved for "no compression applied" in the partition format.
RAW_ID = 0
RAW_NAME = "raw"

#: Paper compressor names → suite member carrying the real byte path.
PAPER_ALIASES: dict[str, str] = {
    "lz4fast": "fastlz-1",
    "lzf": "fastlz-2",
    "lz4": "fastlz-3",
    "lzsse8": "fastlz-6",
    "lz4hc": "fastlz-9",
    "gzip": "zlib-6",
    "zling": "zlib-7",
    "brotli": "zlib-9",
    "zstd": "zlib-5",
    "lzma": "lzma-6",
    "xz": "lzma-9",
    "memcpy": "memcpy",
}


class CompressorRegistry:
    """Thread-safe name/id ↔ compressor mapping."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._by_name: dict[str, Compressor] = {}
        self._by_id: dict[int, Compressor] = {}
        self._next_id = 1  # 0 is RAW_ID
        raw = Compressor(
            name=RAW_NAME, codec=NullCodec(), compressor_id=RAW_ID
        )
        self._by_name[RAW_NAME] = raw
        self._by_id[RAW_ID] = raw

    def register(
        self, codec: Codec, filters: Iterable[Filter] = (), name: str | None = None
    ) -> Compressor:
        """Add a (filters → codec) pipeline; returns the bound Compressor."""
        filters = tuple(filters)
        if name is None:
            prefix = "+".join(f.name for f in filters)
            name = f"{prefix}+{codec.name}" if prefix else codec.name
        with self._lock:
            if name in self._by_name:
                raise ValueError(f"compressor {name!r} already registered")
            comp = Compressor(
                name=name,
                codec=codec,
                filters=filters,
                compressor_id=self._next_id,
            )
            self._by_name[name] = comp
            self._by_id[comp.compressor_id] = comp
            self._next_id += 1
            return comp

    def get(self, key: str | int) -> Compressor:
        """Look up by name, paper alias, or numeric id."""
        if isinstance(key, int):
            try:
                return self._by_id[key]
            except KeyError:
                raise UnknownCompressorError(f"no compressor with id {key}") from None
        name = PAPER_ALIASES.get(key, key)
        try:
            return self._by_name[name]
        except KeyError:
            raise UnknownCompressorError(f"no compressor named {key!r}") from None

    def __contains__(self, key: str | int) -> bool:
        try:
            self.get(key)
            return True
        except UnknownCompressorError:
            return False

    def names(self) -> list[str]:
        """All registered names except the reserved raw entry, in id order."""
        return [
            c.name
            for _, c in sorted(self._by_id.items())
            if c.compressor_id != RAW_ID
        ]

    def __len__(self) -> int:
        return len(self._by_id) - 1  # exclude raw

    def __iter__(self):
        return (c for _, c in sorted(self._by_id.items()) if c.compressor_id)


def _suite_codecs() -> list[Codec]:
    """The 36 base codecs of the default suite."""
    codecs: list[Codec] = [
        NullCodec(),
        RleCodec(),
        HuffmanCodec(),
        LzwCodec(12),
        LzwCodec(14),
        LzwCodec(16),
        Lz77Codec(1),
        Lz77Codec(2),
        Lz77Codec(3),
        Lz77Codec(6),
        Lz77Codec(9),
        Lz77Codec(12),
    ]
    codecs.extend(ZlibCodec(level) for level in range(1, 10))
    codecs.extend(Bz2Codec(level) for level in range(1, 10))
    codecs.extend(LzmaCodec(preset) for preset in (0, 2, 4, 6, 8, 9))
    return codecs


def build_default_registry() -> CompressorRegistry:
    """Construct the 180-configuration suite: 36 codecs × 5 filter chains."""
    registry = CompressorRegistry()
    filter_variants: list[tuple[Filter, ...]] = [
        (),
        (DeltaFilter(),),
        (XorFilter(),),
        (BitshuffleFilter(),),
        (TransposeFilter(4),),
    ]
    for filters in filter_variants:
        for codec in _suite_codecs():
            registry.register(codec, filters)
    return registry


_default_registry: CompressorRegistry | None = None
_default_lock = threading.Lock()


def default_registry() -> CompressorRegistry:
    """The process-wide default suite, built once on first use."""
    global _default_registry
    if _default_registry is None:
        with _default_lock:
            if _default_registry is None:
                _default_registry = build_default_registry()
    return _default_registry


def get_compressor(key: str | int) -> Compressor:
    """Resolve a compressor by name, paper alias, or id in the default suite."""
    return default_registry().get(key)


def list_compressors() -> list[str]:
    """Names of every configuration in the default suite (id order)."""
    return default_registry().names()
