"""An lzbench-like evaluation driver for the compressor suite.

Reproduces the methodology of §VII-D: sample files from a dataset, run
every configuration in the registry over the samples, and record
compression ratio plus compression/decompression throughput. The
results feed Figure 7 (ratio vs decompression-time tradeoff) and
Table IV (ratios of the headline compressors per dataset).
"""

from __future__ import annotations

import argparse
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

from repro.compressors.base import Compressor
from repro.compressors.registry import CompressorRegistry, default_registry
from repro.errors import CompressionError


@dataclass(frozen=True)
class BenchResult:
    """Measured behaviour of one compressor configuration on one sample set."""

    compressor: str
    input_bytes: int
    compressed_bytes: int
    compress_seconds: float
    decompress_seconds: float
    files: int

    @property
    def ratio(self) -> float:
        """Original/compressed — the paper's convention, ≥ is better."""
        if self.compressed_bytes == 0:
            return float("inf")
        return self.input_bytes / self.compressed_bytes

    @property
    def compress_bandwidth(self) -> float:
        """Original bytes/s through ``compress``."""
        return self.input_bytes / max(self.compress_seconds, 1e-12)

    @property
    def decompress_bandwidth(self) -> float:
        """Original bytes/s through ``decompress``."""
        return self.input_bytes / max(self.decompress_seconds, 1e-12)

    @property
    def decompress_cost_per_file(self) -> float:
        """Mean seconds to decompress one sample file (Fig. 7's x-axis)."""
        return self.decompress_seconds / max(self.files, 1)

    @property
    def decompress_throughput(self) -> float:
        """Files/s through ``decompress`` (``Tpt_decom`` of Eq. 1/2)."""
        return self.files / max(self.decompress_seconds, 1e-12)


def bench_compressor(
    compressor: Compressor,
    samples: Sequence[bytes],
    *,
    repetitions: int = 1,
    verify: bool = True,
) -> BenchResult:
    """Measure one configuration over ``samples``.

    With ``verify`` the round-trip is checked on every sample — an
    lzbench ``-v`` equivalent that doubles as an integration test of the
    codec under real data.
    """
    if not samples:
        raise ValueError("bench_compressor requires at least one sample")
    if repetitions < 1:
        raise ValueError(f"repetitions must be >= 1, got {repetitions}")
    compressed: list[bytes] = []
    t0 = time.perf_counter()
    for _ in range(repetitions):
        compressed = [compressor.compress(s) for s in samples]
    compress_seconds = (time.perf_counter() - t0) / repetitions
    t0 = time.perf_counter()
    restored: list[bytes] = []
    for _ in range(repetitions):
        restored = [compressor.decompress(c) for c in compressed]
    decompress_seconds = (time.perf_counter() - t0) / repetitions
    if verify:
        for original, roundtrip in zip(samples, restored):
            if original != roundtrip:
                raise CompressionError(
                    f"{compressor.name}: round-trip mismatch on "
                    f"{len(original)}-byte sample"
                )
    return BenchResult(
        compressor=compressor.name,
        input_bytes=sum(len(s) for s in samples),
        compressed_bytes=sum(len(c) for c in compressed),
        compress_seconds=compress_seconds,
        decompress_seconds=decompress_seconds,
        files=len(samples),
    )


def run_suite(
    samples: Sequence[bytes],
    *,
    registry: CompressorRegistry | None = None,
    names: Iterable[str] | None = None,
    repetitions: int = 1,
    verify: bool = True,
) -> list[BenchResult]:
    """Benchmark every (or the named subset of) configuration(s)."""
    registry = registry or default_registry()
    compressors = (
        [registry.get(n) for n in names] if names is not None else list(registry)
    )
    return [
        bench_compressor(c, samples, repetitions=repetitions, verify=verify)
        for c in compressors
    ]


def pareto_front(results: Sequence[BenchResult]) -> list[BenchResult]:
    """Configurations not dominated in (ratio ↑, decompression cost ↓).

    This is the set Figure 7 highlights: for every plotted point either
    nothing compresses better, or nothing decompresses faster.
    """
    ordered = sorted(
        results, key=lambda r: (r.decompress_cost_per_file, -r.ratio)
    )
    front: list[BenchResult] = []
    best_ratio = -1.0
    for r in ordered:
        if r.ratio > best_ratio:
            front.append(r)
            best_ratio = r.ratio
    return front


def format_results(results: Sequence[BenchResult]) -> str:
    """Render results as an lzbench-style text table."""
    header = (
        f"{'compressor':<24} {'ratio':>7} {'c.MB/s':>9} {'d.MB/s':>9} "
        f"{'d.µs/file':>10}"
    )
    lines = [header, "-" * len(header)]
    for r in sorted(results, key=lambda r: -r.ratio):
        lines.append(
            f"{r.compressor:<24} {r.ratio:>7.2f} "
            f"{r.compress_bandwidth / 1e6:>9.1f} "
            f"{r.decompress_bandwidth / 1e6:>9.1f} "
            f"{r.decompress_cost_per_file * 1e6:>10.1f}"
        )
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:
    """CLI: ``fanstore-lzbench FILE [FILE ...] [--names a,b] [--reps N]``."""
    parser = argparse.ArgumentParser(
        prog="fanstore-lzbench",
        description="Evaluate the compressor suite over sample files.",
    )
    parser.add_argument("files", nargs="+", type=Path, help="sample files")
    parser.add_argument(
        "--names",
        default=None,
        help="comma-separated configuration names (default: whole suite)",
    )
    parser.add_argument("--reps", type=int, default=1, help="repetitions")
    args = parser.parse_args(argv)
    samples = [p.read_bytes() for p in args.files]
    names = args.names.split(",") if args.names else None
    results = run_suite(samples, names=names, repetitions=args.reps)
    print(format_results(results))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
