"""Cross-model consistency: the analytic SharedFileSystem and the DES
lustre path must tell the same story (they are used by different
benchmarks to regenerate the same figures)."""

from __future__ import annotations

import pytest

from repro.baselines.sharedfs import default_lustre
from repro.cluster.machines import cpu
from repro.training.apps import resnet50
from repro.training.simulate import SimJob, simulate_run


class TestAnalyticVsDes:
    @pytest.mark.parametrize("nodes", [4, 32])
    def test_batch_read_within_factor(self, nodes):
        """Both models cost one iteration's shared-FS reads; they use
        different contention formulations (closed-form max vs queueing)
        so exact agreement isn't expected — same order of magnitude and
        the same direction of scaling is."""
        app = resnet50()
        job = SimJob(
            machine=cpu(), app=app, nodes=nodes, io_path="lustre",
            iterations=3, dataset_files=1_000 * nodes,
        )
        des_iter = simulate_run(job).mean_iteration_seconds
        des_io = des_iter - job.compute_seconds  # subtract modeled compute

        fs = default_lustre()
        analytic_io = fs.batch_read_seconds(
            nodes, job.files_per_node, job.file_bytes
        )
        assert des_io > 0
        assert 0.1 < analytic_io / des_io < 10.0

    def test_both_scale_superlinearly_past_saturation(self):
        app = resnet50()

        def des_io(nodes):
            job = SimJob(
                machine=cpu(), app=app, nodes=nodes, io_path="lustre",
                iterations=2, dataset_files=1_000 * nodes,
            )
            return (
                simulate_run(job).mean_iteration_seconds - job.compute_seconds
            )

        fs = default_lustre()

        def analytic_io(nodes):
            job = SimJob(machine=cpu(), app=app, nodes=nodes,
                         io_path="lustre", iterations=1,
                         dataset_files=1_000)
            return fs.batch_read_seconds(
                nodes, job.files_per_node, job.file_bytes
            )

        # per-node I/O time grows with node count in both models
        assert des_io(64) > 1.5 * des_io(4)
        assert analytic_io(64) > 1.5 * analytic_io(4)
