"""The MPI-like communicator: p2p matching, collectives, error paths."""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.comm.communicator import ANY_SOURCE, ANY_TAG, World
from repro.comm.launcher import run_parallel
from repro.errors import CommClosedError, CommError, RankError


class TestWorldConstruction:
    def test_bad_size(self):
        with pytest.raises(RankError):
            World(0)

    def test_bad_rank(self):
        world = World(2)
        with pytest.raises(RankError):
            world.comm(2)
        with pytest.raises(RankError):
            world.comm(-1)

    def test_comms_indexed_by_rank(self):
        world = World(3)
        comms = world.comms()
        assert [c.rank for c in comms] == [0, 1, 2]
        assert all(c.size == 3 for c in comms)


class TestPointToPoint:
    def test_send_recv_fifo_per_pair(self):
        def body(comm):
            if comm.rank == 0:
                for i in range(5):
                    comm.send(i, dest=1, tag=7)
            else:
                return [comm.recv(source=0, tag=7, timeout=5) for _ in range(5)]

        results = run_parallel(body, 2, timeout=10)
        assert results[1] == [0, 1, 2, 3, 4]

    def test_tag_matching_out_of_order(self):
        def body(comm):
            if comm.rank == 0:
                comm.send("low", dest=1, tag=1)
                comm.send("high", dest=1, tag=2)
            else:
                high = comm.recv(source=0, tag=2, timeout=5)
                low = comm.recv(source=0, tag=1, timeout=5)
                return (high, low)

        assert run_parallel(body, 2, timeout=10)[1] == ("high", "low")

    def test_wildcards(self):
        def body(comm):
            if comm.rank == 0:
                got = []
                for _ in range(2):
                    payload, src, tag = comm.recv_with_status(
                        ANY_SOURCE, ANY_TAG, timeout=5
                    )
                    got.append((payload, src, tag))
                return sorted(got, key=lambda x: x[1])
            comm.send(f"from-{comm.rank}", dest=0, tag=comm.rank * 10)

        results = run_parallel(body, 3, timeout=10)
        assert results[0] == [("from-1", 1, 10), ("from-2", 2, 20)]

    def test_recv_timeout_raises(self):
        world = World(2)
        with pytest.raises(CommError):
            world.comm(0).recv(source=1, timeout=0.05)

    def test_send_to_bad_rank(self):
        world = World(2)
        with pytest.raises(RankError):
            world.comm(0).send("x", dest=5)

    def test_negative_tag_rejected(self):
        world = World(2)
        with pytest.raises(CommError):
            world.comm(0).send("x", dest=1, tag=-2)

    def test_isend_irecv(self):
        def body(comm):
            if comm.rank == 0:
                req = comm.isend({"k": 1}, dest=1, tag=3)
                req.wait(timeout=5)
                return None
            req = comm.irecv(source=0, tag=3)
            assert not req.test() or True  # may complete quickly
            return req.wait(timeout=5)

        assert run_parallel(body, 2, timeout=10)[1] == {"k": 1}


class TestCollectives:
    def test_allgather_orders_by_rank(self):
        results = run_parallel(
            lambda c: c.allgather(c.rank * 11, timeout=5), 4, timeout=10
        )
        assert all(r == [0, 11, 22, 33] for r in results)

    def test_bcast_from_nonzero_root(self):
        def body(comm):
            value = "payload" if comm.rank == 2 else None
            return comm.bcast(value, root=2, timeout=5)

        assert run_parallel(body, 4, timeout=10) == ["payload"] * 4

    def test_gather_only_at_root(self):
        results = run_parallel(
            lambda c: c.gather(c.rank**2, root=1, timeout=5), 3, timeout=10
        )
        assert results[0] is None and results[2] is None
        assert results[1] == [0, 1, 4]

    def test_scatter(self):
        def body(comm):
            values = [f"v{i}" for i in range(3)] if comm.rank == 0 else None
            return comm.scatter(values, root=0, timeout=5)

        assert run_parallel(body, 3, timeout=10) == ["v0", "v1", "v2"]

    def test_scatter_wrong_count_raises(self):
        def body(comm):
            values = ["only-one"] if comm.rank == 0 else None
            return comm.scatter(values, root=0, timeout=5)

        with pytest.raises(CommError):
            run_parallel(body, 3, timeout=10)

    def test_alltoall(self):
        def body(comm):
            out = [f"{comm.rank}->{j}" for j in range(comm.size)]
            return comm.alltoall(out, timeout=5)

        results = run_parallel(body, 3, timeout=10)
        assert results[1] == ["0->1", "1->1", "2->1"]

    def test_allreduce_numpy(self):
        def body(comm):
            vec = np.full(4, float(comm.rank + 1))
            return comm.allreduce(vec, np.add, timeout=5)

        results = run_parallel(body, 3, timeout=10)
        for r in results:
            np.testing.assert_allclose(r, np.full(4, 6.0))

    def test_reduce_custom_op(self):
        def body(comm):
            return comm.reduce(comm.rank + 1, lambda a, b: a * b, root=0,
                               timeout=5)

        results = run_parallel(body, 4, timeout=10)
        assert results[0] == 24

    def test_barrier_synchronizes(self):
        order = []
        lock = threading.Lock()

        def body(comm):
            with lock:
                order.append(("before", comm.rank))
            comm.barrier(timeout=5)
            with lock:
                order.append(("after", comm.rank))

        run_parallel(body, 3, timeout=10)
        befores = [i for i, (k, _) in enumerate(order) if k == "before"]
        afters = [i for i, (k, _) in enumerate(order) if k == "after"]
        assert max(befores) < min(afters)

    def test_sequential_collectives_stay_paired(self):
        def body(comm):
            first = comm.allgather(("a", comm.rank), timeout=5)
            second = comm.allgather(("b", comm.rank), timeout=5)
            return (first, second)

        for first, second in run_parallel(body, 3, timeout=10):
            assert all(tag == "a" for tag, _ in first)
            assert all(tag == "b" for tag, _ in second)

    def test_single_rank_world(self):
        world = World(1)
        comm = world.comm(0)
        assert comm.allgather("x", timeout=1) == ["x"]
        assert comm.allreduce(5, lambda a, b: a + b, timeout=1) == 5
        comm.barrier(timeout=1)


class TestTeardown:
    """World.close() must unblock every parked operation promptly with
    CommClosedError — a failed rank cannot leave its peers waiting out
    a 30 s timeout at each of recv, irecv, and a half-arrived
    collective."""

    def _park(self, fn) -> tuple[threading.Thread, dict]:
        caught: dict[str, BaseException] = {}

        def target() -> None:
            try:
                fn()
            except BaseException as exc:  # noqa: BLE001 - asserted below
                caught["exc"] = exc

        thread = threading.Thread(target=target, daemon=True)
        thread.start()
        time.sleep(0.1)  # let it reach the blocking wait
        return thread, caught

    def _close_and_check(self, world: World, thread, caught) -> None:
        start = time.perf_counter()
        world.close()
        thread.join(5)
        assert not thread.is_alive()
        assert time.perf_counter() - start < 2  # promptly, not at timeout
        assert isinstance(caught["exc"], CommClosedError)

    def test_close_unblocks_parked_recv(self):
        world = World(2)
        thread, caught = self._park(
            lambda: world.comm(0).recv(source=1, timeout=30)
        )
        self._close_and_check(world, thread, caught)

    def test_close_unblocks_parked_irecv(self):
        world = World(2)
        req = world.comm(0).irecv(source=1, tag=3)
        thread, caught = self._park(lambda: req.wait(timeout=30))
        self._close_and_check(world, thread, caught)

    def test_close_unblocks_half_arrived_collective(self):
        world = World(3)
        # two of three ranks arrive; the third never will
        t0, c0 = self._park(lambda: world.comm(0).barrier(timeout=30))
        t1, c1 = self._park(lambda: world.comm(1).barrier(timeout=30))
        start = time.perf_counter()
        world.close()
        t0.join(5)
        t1.join(5)
        assert not t0.is_alive() and not t1.is_alive()
        assert time.perf_counter() - start < 2
        assert isinstance(c0["exc"], CommClosedError)
        assert isinstance(c1["exc"], CommClosedError)

    def test_recv_after_close_raises_immediately(self):
        world = World(2)
        world.close()
        with pytest.raises(CommClosedError):
            world.comm(0).recv(source=1, timeout=30)
