"""The FanStore daemon (§V-A, §V-D).

One daemon runs per node (here: per rank of the in-process world). It

1. loads its assigned partitions from the shared file system into the
   local backend, plus any *extra* partitions capacity allows (copied
   from the ring neighbor, not re-read from the shared FS — §V-D);
2. exchanges metadata with every peer through one ``allgather`` so all
   subsequent metadata traffic is node-local (§IV-C1);
3. serves ``fetch`` requests from peers for compressed bytes it hosts
   (MPI send/recv in the paper; the communicator here);
4. decompresses on ``open()`` into the reference-counted cache and
   answers ``read()`` from it (Figures 2–4);
5. accepts the write path: an output file closed by the client is
   dumped to the backend and its metadata forwarded to the rank that
   owns the path's hash slot (§V-D site 4).

Message protocol (all on ``TAG_DAEMON``; replies on caller-chosen tags):

========== =====================================  =========================
kind        payload                                reply
========== =====================================  =========================
fetch       (path, reply_tag)                     (ok, compressed|error)
stat        (path, reply_tag)                     (ok, FileRecord|None)
write_meta  FileRecord                            —
stop        —                                     —
========== =====================================  =========================
"""

from __future__ import annotations

import itertools
import random
import threading
import time
import zlib
from dataclasses import dataclass
from typing import Any

from repro.comm.communicator import ANY_SOURCE, Communicator
from repro.compressors.registry import CompressorRegistry, default_registry
from repro.errors import (
    CapacityError,
    CommClosedError,
    CommError,
    DataIntegrityError,
    FanStoreError,
    FileNotFoundInStoreError,
    RankDeadError,
    RetryExhaustedError,
)
from repro.fanstore.backend import DiskBackend, RamBackend
from repro.fanstore.cache import DecompressedCache
from repro.fanstore.layout import blob_crc32, read_partition
from repro.fanstore.metadata import FileRecord, MetadataTable, normalize
from repro.fanstore.prepare import PreparedDataset

TAG_DAEMON = 0x0FA0
_REPLY_TAG_BASE = 0x1000


@dataclass
class DaemonStats:
    """Counters surfaced to the benchmarks."""

    local_opens: int = 0
    remote_fetches: int = 0
    remote_bytes: int = 0
    decompressions: int = 0
    decompressed_bytes: int = 0
    served_requests: int = 0
    writes: int = 0
    write_bytes: int = 0
    malformed_requests: int = 0
    retries: int = 0  # re-sent request/reply attempts (lost or late replies)
    failovers: int = 0  # fetches that had to leave the home rank
    degraded_reads: int = 0  # payloads re-read from the shared FS
    corruption_detected: int = 0  # payloads that failed digest verification
    corruption_repaired: int = 0  # of those, healed via the failover ladder
    records_scrubbed: int = 0  # records verified by the background scrubber


@dataclass(frozen=True)
class DaemonConfig:
    """Tunables of one daemon instance."""

    cache_bytes: int = 1 << 30
    retain_cache: bool = False  # paper policy: release at refcount zero
    capacity_bytes: int | None = None  # burst-buffer budget; None = unbounded
    extra_partition_budget: int = 0  # additional partitions to replicate
    request_timeout: float = 30.0
    #: retry budget for one request/reply exchange: ``max_retries``
    #: re-sends after the first attempt, each on a fresh reply tag, with
    #: exponential backoff (base * 2^(attempt-1), capped at the max)
    #: plus up to ``retry_jitter`` * backoff of seeded random jitter so
    #: synchronized peers don't re-stampede a recovering rank.
    max_retries: int = 2
    retry_backoff_base: float = 0.05
    retry_backoff_max: float = 2.0
    retry_jitter: float = 0.5
    #: attempts against each replica rank once the home rank is given
    #: up on (replicas are a bonus tier; the shared FS is the floor).
    failover_attempts: int = 1
    #: compressor applied to output files at close (None = store raw).
    #: Checkpoints/logs are written once and rarely re-read (§II-B3), so
    #: a slow-but-dense codec is usually the right choice here.
    output_compressor: str | None = None
    #: digest-check every compressed payload before it is decompressed
    #: or served (records without a recorded digest always pass); the
    #: cached-plaintext fast path is unaffected either way.
    verify_reads: bool = True


class FanStoreDaemon:
    """Per-rank object-store service."""

    def __init__(
        self,
        comm: Communicator | None = None,
        *,
        config: DaemonConfig | None = None,
        backend: RamBackend | DiskBackend | None = None,
        registry: CompressorRegistry | None = None,
    ) -> None:
        self.comm = comm
        self.config = config or DaemonConfig()
        self.backend = backend if backend is not None else RamBackend()
        self.registry = registry or default_registry()
        self.metadata = MetadataTable()
        self.cache = DecompressedCache(
            self.config.cache_bytes, retain_unpinned=self.config.retain_cache
        )
        self.stats = DaemonStats()
        self.rank = comm.rank if comm else 0
        self.size = comm.size if comm else 1
        self._service_thread: threading.Thread | None = None
        self._reply_tags = itertools.count(_REPLY_TAG_BASE + self.rank * 1_000_000)
        self._reply_lock = threading.Lock()
        self._loaded_bytes = 0
        self._prepared: PreparedDataset | None = None
        # replica paths this rank acquired during ring replication,
        # announced to peers in the metadata allgather
        self._replicated_paths: list[str] = []
        self._retry_rng = random.Random(0x5EED ^ self.rank)

    # -- loading ----------------------------------------------------------

    def _assigned_partitions(self, num_partitions: int) -> list[int]:
        """Round-robin partition→rank assignment (§V-D: rank determines
        which partitions to load)."""
        return [p for p in range(num_partitions) if p % self.size == self.rank]

    def _charge_capacity(self, nbytes: int, what: str) -> None:
        self._loaded_bytes += nbytes
        cap = self.config.capacity_bytes
        if cap is not None and self._loaded_bytes > cap:
            raise CapacityError(
                f"rank {self.rank}: loading {what} exceeds the "
                f"{cap}-byte burst buffer ({self._loaded_bytes} needed)"
            )

    def _ingest_partition(self, partition_path, home_rank: int) -> int:
        """Ingest one partition file; returns payload bytes ingested.

        With a :class:`~repro.fanstore.backend.PartitionBackend` the
        payloads stay inside the partition file on local disk and only
        the metadata is scanned (the paper's SSD mode); otherwise the
        payload bytes are loaded into the backend (the RAM mode).
        """
        payload = 0
        if hasattr(self.backend, "register"):
            entries = read_partition(partition_path, with_data=False)
            for e in entries:
                self.backend.register(
                    e.path, partition_path, e.data_offset, e.compressed_size
                )
                payload += e.compressed_size
        else:
            entries = read_partition(partition_path, with_data=True)
            for e in entries:
                assert e.data is not None
                self.backend.put(e.path, e.data)
                payload += e.compressed_size
        self.metadata.insert_entries(entries, home_rank)
        return payload

    def load(self, prepared: PreparedDataset) -> None:
        """Stage the prepared dataset: local partitions from the shared
        FS, extra partitions from the ring neighbor, broadcast partition
        everywhere, then the metadata allgather."""
        self._prepared = prepared  # kept for degraded shared-FS re-reads
        assigned = self._assigned_partitions(len(prepared.partitions))
        partition_paths = prepared.partition_paths()
        for pid in assigned:
            nbytes = self._ingest_partition(partition_paths[pid], self.rank)
            self._charge_capacity(nbytes, f"partition {pid}")

        bcast = prepared.broadcast_path()
        if bcast is not None:
            nbytes = self._ingest_partition(bcast, self.rank)
            self._charge_capacity(nbytes, "broadcast partition")

        if self.comm is not None:
            self._replicate_extra_partitions(assigned)
            self._metadata_allgather()

    def _replicate_extra_partitions(self, assigned: list[int]) -> None:
        """§V-D site 2: extra partitions are copied from the left ring
        neighbor rather than re-read off the shared file system. Each
        hop ships (path, compressed bytes, record) tuples."""
        budget = self.config.extra_partition_budget
        if budget <= 0:
            return
        comm = self.comm
        assert comm is not None
        block = [
            (rec.path, self.backend.get(rec.path), rec)
            for rec in self.metadata.local_records(self.rank)
            if not rec.is_broadcast
        ]
        left = (comm.rank - 1) % comm.size
        right = (comm.rank + 1) % comm.size
        current = block
        for _hop in range(min(budget, comm.size - 1)):
            comm.send(current, right, TAG_DAEMON + 1)
            current = comm.recv(left, TAG_DAEMON + 1,
                                timeout=self.config.request_timeout)
            nbytes = 0
            for path, data, _rec in current:
                self.backend.put(path, data)
                self._replicated_paths.append(path)
                nbytes += len(data)
            self._charge_capacity(nbytes, "extra partition")

    def _metadata_allgather(self) -> None:
        """§IV-C1: one allgather builds the identical global view on
        every node. Records keep their *home* rank so remote fetches
        know where to go; each rank also announces the replica copies it
        acquired during ring replication, so a fetch whose home rank has
        died can fail over to a surviving copy."""
        comm = self.comm
        assert comm is not None
        mine = self.metadata.local_records(self.rank)
        contributions = comm.allgather((mine, list(self._replicated_paths)))
        for sender, (records, replicated) in enumerate(contributions):
            self.metadata.merge(records)
            for path in replicated:
                self.metadata.add_replica(path, sender)

    # -- service loop -------------------------------------------------------

    def start(self) -> None:
        """Start answering peer requests (no-op single-node)."""
        if self.comm is None or self._service_thread is not None:
            return
        self._service_thread = threading.Thread(
            target=self._serve, name=f"fanstore-daemon-{self.rank}", daemon=True
        )
        self._service_thread.start()

    def stop(self) -> None:
        """Stop the service loop (idempotent)."""
        if self.comm is None or self._service_thread is None:
            return
        self.comm.send(("stop", None), self.rank, TAG_DAEMON)
        self._service_thread.join(timeout=self.config.request_timeout)
        self._service_thread = None

    def _serve(self) -> None:
        comm = self.comm
        assert comm is not None
        while True:
            try:
                payload, source, _tag = comm.recv_with_status(
                    ANY_SOURCE, TAG_DAEMON, timeout=None
                )
            except (CommClosedError, CommError):
                return
            # A malformed message must not kill the service loop — the
            # daemon outlives misbehaving clients (it answers to every
            # peer, not just the sender).
            try:
                kind, body = payload
            except (TypeError, ValueError):
                self.stats.malformed_requests += 1
                continue
            if kind == "stop":
                return
            if kind not in ("fetch", "stat", "write_meta"):
                self.stats.malformed_requests += 1
                continue
            # The body unpack must sit under the same shield as the
            # envelope unpack: one peer sending ("fetch", None) must not
            # take the service down for every other peer.
            try:
                subject, reply_tag = body
            except (TypeError, ValueError):
                self.stats.malformed_requests += 1
                continue
            if not isinstance(reply_tag, int) or reply_tag < 0:
                self.stats.malformed_requests += 1
                continue
            try:
                if kind == "fetch":
                    self.stats.served_requests += 1
                    try:
                        data = self._verified_local(subject)
                    except FileNotFoundInStoreError:
                        comm.send((False, subject), source, reply_tag)
                    except DataIntegrityError:
                        # never serve bytes that failed verification and
                        # could not be self-repaired; no reply at all,
                        # so the requester times out and walks its own
                        # failover ladder (replicas, shared FS)
                        continue
                    else:
                        comm.send((True, data), source, reply_tag)
                elif kind == "stat":
                    try:
                        rec = self.metadata.get(subject)
                    except FileNotFoundInStoreError:
                        comm.send((False, None), source, reply_tag)
                    else:
                        comm.send((True, rec), source, reply_tag)
                else:  # write_meta
                    self.metadata.insert(subject)
                    comm.send((True, None), source, reply_tag)
            except (CommClosedError, CommError):
                # replying to a torn-down world (or after our own
                # injected death) ends the service loop — a crashed
                # daemon stops serving
                return
            except (FanStoreError, TypeError, ValueError, AttributeError):
                # a well-framed envelope around a nonsense subject (bad
                # path type, bogus write_meta record) is still malformed
                self.stats.malformed_requests += 1

    # -- data path ------------------------------------------------------------

    def _next_reply_tag(self) -> int:
        with self._reply_lock:
            return next(self._reply_tags)

    def _backoff(self, attempt: int) -> float:
        """Capped exponential backoff with seeded jitter for retry
        ``attempt`` (1-based)."""
        cfg = self.config
        delay = min(
            cfg.retry_backoff_max,
            cfg.retry_backoff_base * (2 ** (attempt - 1)),
        )
        return delay * (1.0 + cfg.retry_jitter * self._retry_rng.random())

    def _request(
        self, kind: str, body: Any, dest: int, *, attempts: int | None = None
    ) -> tuple[bool, Any]:
        """One request/reply exchange with a bounded retry budget.

        Every attempt uses a *fresh* reply tag, so a reply that arrives
        after its attempt already timed out rots harmlessly in the
        mailbox instead of being mistaken for the answer to a later
        request. ``CommClosedError`` (world teardown) and
        ``RankDeadError`` (this rank is the dead one) are not retried —
        no amount of resending survives either.
        """
        comm = self.comm
        assert comm is not None
        if attempts is None:
            attempts = 1 + max(0, self.config.max_retries)
        last_exc: CommError | None = None
        for attempt in range(attempts):
            if attempt:
                self.stats.retries += 1
                time.sleep(self._backoff(attempt))
            reply_tag = self._next_reply_tag()
            try:
                comm.send((kind, (body, reply_tag)), dest, TAG_DAEMON)
                return comm.recv(
                    dest, reply_tag, timeout=self.config.request_timeout
                )
            except (CommClosedError, RankDeadError):
                raise
            except CommError as exc:
                last_exc = exc
        raise RetryExhaustedError(
            f"rank {self.rank}: {kind} request to rank {dest} failed "
            f"after {attempts} attempt(s): {last_exc}"
        ) from last_exc

    def _lookup(self, norm: str) -> FileRecord:
        """Metadata lookup with the runtime-output fallback: paths
        written after the load-time allgather live only on their writer
        and the hash owner, so a local miss asks the owner and caches
        the record."""
        try:
            return self.metadata.get(norm)
        except FileNotFoundInStoreError:
            record = self.stat_any(norm)
            if record is None:
                raise
            self.metadata.insert(record)
            return record

    def _blob_ok(self, record: FileRecord, data: bytes) -> bool:
        """Digest check of compressed bytes against the record; passes
        when verification is off or no digest was recorded."""
        if not self.config.verify_reads or not record.stat.has_digest:
            return True
        return blob_crc32(data) == record.stat.crc32

    def _verified_local(self, norm: str, record: FileRecord | None = None) -> bytes:
        """Local backend bytes, digest-checked; a corrupt copy is
        quarantined and self-repaired through the failover ladder.
        Raises :class:`DataIntegrityError` when unrepairable and
        :class:`FileNotFoundInStoreError` when simply absent."""
        if record is None:
            try:
                record = self.metadata.get(norm)
            except FileNotFoundInStoreError:
                return self.backend.get(norm)
        try:
            data = self.backend.get(norm)
        except DataIntegrityError:
            # the backend itself flagged the bytes (torn partition file)
            return self.repair(norm, record)
        if self._blob_ok(record, data):
            return data
        return self.repair(norm, record)

    def fetch_compressed(self, path: str) -> bytes:
        """Compressed bytes for ``path`` — locally, from the home rank,
        from a surviving replica, or (degraded mode) re-read off the
        shared FS (§IV-C2, Figure 2; failover ladder home → replicas →
        partition file). Every tier's bytes are digest-verified before
        they are accepted; a mismatch anywhere descends the ladder."""
        norm = normalize(path)
        record = self._lookup(norm)
        if (
            record.home_rank == self.rank
            or self.comm is None
            or norm in self.backend  # replicated via an extra partition
        ):
            self.stats.local_opens += 1
            return self._verified_local(norm, record)
        try:
            ok, data = self._request("fetch", norm, record.home_rank)
        except RetryExhaustedError as home_failure:
            self.stats.failovers += 1
            data = self._fetch_from_replicas(norm, record)
            if data is None:
                data = self._degraded_read(norm, record)
            if data is None:
                raise home_failure
            return data
        if not ok:
            # authoritative not-found from a live home rank: no failover
            raise FileNotFoundInStoreError(norm)
        self.stats.remote_fetches += 1
        self.stats.remote_bytes += len(data)
        if self._blob_ok(record, data):
            return data
        # the home rank served corrupt bytes (and could not self-heal):
        # same quarantine + ladder as a corrupt local copy
        return self.repair(norm, record)

    def repair(self, path: str, record: FileRecord | None = None) -> bytes:
        """Quarantine a corrupt copy of ``path`` and re-fetch verified
        bytes through the failover ladder: home rank (when remote) →
        announced replicas → shared-FS partition re-read. On success the
        good bytes replace the corrupt copy in the backend and any
        cached plaintext is discarded; on failure the corruption is
        unrepairable and a typed :class:`DataIntegrityError` naming the
        path is raised. Counts ``corruption_detected`` /
        ``corruption_repaired``."""
        norm = normalize(path)
        if record is None:
            record = self._lookup(norm)
        self.stats.corruption_detected += 1
        self.cache.discard(norm)
        data: bytes | None = None
        if self.comm is not None and record.home_rank != self.rank:
            try:
                ok, candidate = self._request("fetch", norm, record.home_rank)
            except (RetryExhaustedError, RankDeadError):
                ok, candidate = False, None
            if ok and self._blob_ok(record, candidate):
                data = candidate
        if data is None and self.comm is not None:
            data = self._fetch_from_replicas(norm, record)
        if data is None:
            data = self._degraded_read(norm, record)
        if data is None:
            raise DataIntegrityError(
                norm,
                "compressed payload failed digest verification and no "
                "replica or shared-FS copy could repair it",
            )
        self.stats.corruption_repaired += 1
        self.backend.put(norm, data)
        return data

    def _fetch_from_replicas(self, norm: str, record: FileRecord) -> bytes | None:
        """Second tier of the ladder: ranks that announced a ring-copied
        replica of this path at load time. A replica serving corrupt
        bytes is skipped the same way an unreachable one is."""
        for replica in self.metadata.replica_ranks(norm):
            if replica in (self.rank, record.home_rank):
                continue
            try:
                ok, data = self._request(
                    "fetch", norm, replica,
                    attempts=max(1, self.config.failover_attempts),
                )
            except RetryExhaustedError:
                continue
            if ok and self._blob_ok(record, data):
                self.stats.remote_fetches += 1
                self.stats.remote_bytes += len(data)
                return data
        return None

    def _degraded_read(self, norm: str, record: FileRecord) -> bytes | None:
        """Floor of the ladder: the prepared partition files never left
        the shared FS, so when home and replicas are all gone the
        payload can be re-read at its recorded offset — slow (the exact
        contention §IV-C1 staged data to avoid) but correct. The copy is
        digest-checked (a corrupt partition file must not be promoted)
        and then promoted into the local backend so one outage costs one
        shared-FS round trip, not one per epoch."""
        if self._prepared is None or record.data_offset < 0:
            return None  # runtime output: bytes exist only on its writer
        paths = self._prepared.partition_paths()
        if record.partition_id < len(paths):
            part = paths[record.partition_id]
        elif record.is_broadcast:
            part = self._prepared.broadcast_path()
        else:
            return None
        if part is None or not part.exists():
            return None
        with open(part, "rb") as fh:
            fh.seek(record.data_offset)
            data = fh.read(record.compressed_size)
        if len(data) != record.compressed_size:
            return None
        if not self._blob_ok(record, data):
            return None
        self.stats.degraded_reads += 1
        self.backend.put(norm, data)
        return data

    def _decompress(self, record: FileRecord, data: bytes) -> bytes:
        compressor = self.registry.get(record.compressor_id)
        plain = compressor.decompress(data)
        self.stats.decompressions += 1
        self.stats.decompressed_bytes += len(plain)
        if len(plain) != record.stat.st_size:
            raise FanStoreError(
                f"{record.path}: decompressed to {len(plain)} bytes, "
                f"stat says {record.stat.st_size}"
            )
        return plain

    def open_file(self, path: str) -> bytes:
        """Figure 2's open(): cache hit or fetch+decompress+insert.
        Pins the cache entry; pair with :meth:`close_file`."""
        norm = normalize(path)
        cached = self.cache.open(norm)
        if cached is not None:
            return cached
        record = self._lookup(norm)
        compressed = self.fetch_compressed(norm)
        plain = self._decompress(record, compressed)
        return self.cache.insert(norm, plain)

    def close_file(self, path: str) -> None:
        """Figure 4's close(): unpin (and free at refcount zero)."""
        self.cache.close(normalize(path))

    # -- write path ------------------------------------------------------------

    def _hash_owner(self, path: str) -> int:
        """Deterministic metadata owner for runtime-written paths (crc32
        rather than ``hash()``, which is salted per process)."""
        return zlib.crc32(path.encode("utf-8")) % self.size

    def store_output(self, path: str, data: bytes, record: FileRecord) -> None:
        """§V-D site 4: dump a closed output file to the backend and
        forward its metadata to the owning rank. The forward is
        acknowledged so that once ``close()`` returns, the metadata is
        globally discoverable — otherwise a peer racing a barrier could
        stat the path before the owner's daemon processed the insert."""
        norm = normalize(path)
        self.backend.put(norm, data)
        self.metadata.insert(record)
        self.stats.writes += 1
        self.stats.write_bytes += len(data)
        if self.comm is not None:
            owner = self._hash_owner(norm)
            if owner != self.rank:
                # retried like any request/reply site; RetryExhaustedError
                # propagates — the caller must know the path is not yet
                # globally discoverable (bytes are safe on this rank).
                self._request("write_meta", record, owner)

    def stat_any(self, path: str) -> FileRecord | None:
        """Metadata lookup that falls back to the hash owner for paths
        written after the load-time allgather."""
        norm = normalize(path)
        try:
            return self.metadata.get(norm)
        except FileNotFoundInStoreError:
            pass
        if self.comm is None:
            return None
        owner = self._hash_owner(norm)
        if owner == self.rank:
            return None
        ok, rec = self._request("stat", norm, owner)
        return rec if ok else None
