"""Streaming statistics: Welford accuracy, merge, percentiles."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.stats import RunningStats, percentile, summarize

floats = st.floats(
    min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False
)


class TestRunningStats:
    def test_empty(self):
        rs = RunningStats()
        assert rs.count == 0
        assert math.isnan(rs.mean)
        assert math.isnan(rs.variance)

    def test_single(self):
        rs = RunningStats()
        rs.add(5.0)
        assert rs.mean == 5.0
        assert rs.min == rs.max == 5.0
        assert math.isnan(rs.variance)

    @settings(max_examples=50, deadline=None)
    @given(xs=st.lists(floats, min_size=2, max_size=200))
    def test_matches_numpy(self, xs):
        rs = RunningStats()
        rs.extend(xs)
        assert rs.mean == pytest.approx(np.mean(xs), rel=1e-9, abs=1e-6)
        assert rs.variance == pytest.approx(
            np.var(xs, ddof=1), rel=1e-6, abs=1e-4
        )
        assert rs.min == min(xs)
        assert rs.max == max(xs)

    @settings(max_examples=30, deadline=None)
    @given(
        a=st.lists(floats, min_size=1, max_size=50),
        b=st.lists(floats, min_size=1, max_size=50),
    )
    def test_merge_equals_concat(self, a, b):
        ra, rb, rall = RunningStats(), RunningStats(), RunningStats()
        ra.extend(a)
        rb.extend(b)
        rall.extend(a + b)
        merged = ra.merge(rb)
        assert merged.count == rall.count
        assert merged.mean == pytest.approx(rall.mean, rel=1e-9, abs=1e-6)
        assert merged.variance == pytest.approx(
            rall.variance, rel=1e-6, abs=1e-4
        )

    def test_merge_with_empty(self):
        ra, rb = RunningStats(), RunningStats()
        ra.extend([1.0, 2.0])
        merged = ra.merge(rb)
        assert merged.count == 2
        assert merged.mean == 1.5


class TestPercentile:
    def test_matches_numpy_linear(self):
        data = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]
        for q in (0, 10, 25, 50, 75, 90, 100):
            assert percentile(data, q) == pytest.approx(
                np.percentile(data, q)
            )

    def test_single_element(self):
        assert percentile([7.0], 50) == 7.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)


class TestSummarize:
    def test_summary_fields(self):
        s = summarize([1.0, 2.0, 3.0, 4.0])
        assert s.count == 4
        assert s.mean == 2.5
        assert s.min == 1.0
        assert s.max == 4.0
        assert s.p50 == 2.5

    def test_single_sample_stdev_zero(self):
        assert summarize([5.0]).stdev == 0.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_as_dict(self):
        d = summarize([1.0, 2.0]).as_dict()
        assert set(d) == {"count", "mean", "stdev", "min", "p50", "p95", "max"}
