#!/usr/bin/env python3
"""FRNN-style disruption prediction with async I/O (the §VII-E2 case).

The tokamak dataset is the paper's pathological one: ~580k files of
~1.2 KB, where metadata cost dominates and the file-system block size
wastes most of the storage. This example reproduces both observations
at reduced scale:

- asynchronous (prefetching) I/O accepts even slow compressors
  (Equation 2), so the highest-ratio one wins;
- concatenating tiny files into FanStore partitions recovers the
  block-size waste (the paper's 6.5x effective vs 2.6x per-file ratio).

An LSTM trains on the signals for real, fed by the AsyncLoader.

Run: ``python examples/frnn_tokamak.py``
"""

from __future__ import annotations

import io
import tempfile
from pathlib import Path

import numpy as np

from repro.datasets import generate_dataset
from repro.fanstore import FanStore, prepare_dataset
from repro.selection import CompressorSelector
from repro.selection.cases import frnn_cpu
from repro.training import (
    AsyncLoader,
    DataParallelTrainer,
    LSTMClassifier,
    list_training_files,
)

TIMESTEPS = 12
CHANNELS = 3
BLOCK = 4096  # file-system block size the paper's observation hinges on


def decode_npz(raw: bytes, path: str):
    arrs = np.load(io.BytesIO(raw))
    signals = arrs["signals"].astype(np.float64) / 1000.0  # (3, T)
    window = signals[:, :TIMESTEPS].T  # (T, 3)
    if window.shape[0] < TIMESTEPS:
        window = np.pad(window, ((0, TIMESTEPS - window.shape[0]), (0, 0)))
    label = int(signals.sum() > 0)  # synthetic "disruption" rule
    return window, label


def collate(batch):
    xs = np.stack([s[0] for s in batch.samples])
    ys = np.asarray([s[1] for s in batch.samples])
    return xs, ys


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="frnn-tokamak-"))

    print("== selection: async I/O hides decompression (Equation 2) ==")
    case = frnn_cpu()
    selector = CompressorSelector(case.inputs)
    result = selector.select(case.candidates())
    print(f"   budget/file: "
          f"{selector.budget_per_file(2.6) * 1e6:.0f} µs; every candidate "
          f"qualifies -> highest ratio wins: {result.selected.name}")

    print("\n== the tiny-file storage effect (§VII-E2) ==")
    raw = workdir / "raw"
    generate_dataset("tokamak", raw, num_files=48, avg_file_size=1_200,
                     num_dirs=1, seed=5)
    files = [p for p in raw.rglob("*.npz")]
    logical = sum(p.stat().st_size for p in files)
    on_disk = sum(-(-p.stat().st_size // BLOCK) * BLOCK for p in files)
    prepared = prepare_dataset(raw, workdir / "packed", num_partitions=2,
                               compressor="zlib-6", threads=2)
    packed_blocks = -(-prepared.compressed_bytes // BLOCK) * BLOCK
    print(f"   {len(files)} files, logical {logical} B but "
          f"{on_disk} B in {BLOCK}-byte blocks ({on_disk / logical:.1f}x waste)")
    print(f"   per-file compression: {prepared.ratio:.1f}x; "
          f"effective vs block-allocated: {on_disk / packed_blocks:.1f}x "
          f"(the paper's 2.6x -> 6.5x effect)")

    print("\n== train the LSTM through the AsyncLoader (Figure 5b) ==")
    with FanStore(prepared) as fs:
        all_files = list_training_files(fs.client)
        loader = AsyncLoader(
            fs.client, all_files, batch_size=8, epochs=8, seed=2,
            decoder=decode_npz, depth=2,
        )
        trainer = DataParallelTrainer(
            LSTMClassifier(CHANNELS, 12, 2, seed=3),
            loader,
            collate,
            lr=0.1,
            log_client=fs.client,
        )
        report = trainer.train()
        print(f"   {report.iterations} iterations, loss "
              f"{report.losses[0]:.3f} -> {report.losses[-1]:.3f}")
        print(f"   training log written through FanStore: "
              f"{trainer.log_path} "
              f"({len(fs.client.read_file(trainer.log_path))} bytes)")
    print("\ndone.")


if __name__ == "__main__":
    main()
