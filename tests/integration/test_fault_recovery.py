"""§V-E end-to-end: a node failure mid-training, relaunch at the same
scale, resume from the last epoch checkpoint, and converge to the exact
state an uninterrupted run reaches."""

from __future__ import annotations

import numpy as np
import pytest

from repro.comm.launcher import ParallelFailure, run_parallel
from repro.fanstore.faults import CheckpointManager
from repro.fanstore.store import FanStore
from repro.training.loader import SyncLoader, list_training_files
from repro.training.models import MLP
from repro.training.trainer import DataParallelTrainer, make_array_collate

FEATURES = 8
CLASSES = 2
NODES = 3


def decoder(raw: bytes, path: str):
    arr = np.frombuffer(raw[8 : 8 + FEATURES], dtype=np.uint8)
    features = arr.astype(np.float64) / 255.0
    return features, int(arr.sum()) % CLASSES


class _CrashAfterEpoch(Exception):
    pass


class _CrashingLoader:
    """A loader that simulates node failure entering a given epoch."""

    def __init__(self, inner, crash_after: int) -> None:
        self.inner = inner
        self.crash_after = crash_after

    def __iter__(self):
        for batch in self.inner:
            if batch.epoch > self.crash_after:
                raise _CrashAfterEpoch(f"node died at epoch {batch.epoch}")
            yield batch


def _make_trainer(fs, comm, ckpt_dir, epochs, crash_after=None):
    files = [p for p in list_training_files(fs.client) if p.startswith("cls")]
    loader = SyncLoader(
        fs.client, files, batch_size=6, epochs=epochs,
        rank=comm.rank, world_size=comm.size, seed=1, decoder=decoder,
    )
    if crash_after is not None:
        loader = _CrashingLoader(loader, crash_after)
    model = MLP([FEATURES, 6, CLASSES], seed=13)
    # Every rank points at the shared checkpoint directory — the trainer
    # itself restricts *saving* to rank 0, but all ranks must read the
    # same resume point (or their epoch counts diverge).
    return DataParallelTrainer(
        model,
        loader,
        make_array_collate((FEATURES,), CLASSES),
        comm=comm,
        lr=0.2,
        checkpoints=CheckpointManager(ckpt_dir),
    )


def test_crash_then_resume_matches_uninterrupted(prepared_dataset, tmp_path):
    epochs = 4
    ckpt_crash = tmp_path / "ckpt-crash"
    ckpt_clean = tmp_path / "ckpt-clean"

    # Reference: an uninterrupted run.
    def clean(comm):
        with FanStore(prepared_dataset, comm=comm) as fs:
            trainer = _make_trainer(fs, comm, ckpt_clean, epochs)
            trainer.train()
            return trainer.model.get_flat_params()

    reference = run_parallel(clean, NODES, timeout=120)[0]

    # Crashed run: rank 1 dies entering epoch 2 (epochs 0-1 completed
    # and checkpointed by rank 0).
    def crashing(comm):
        with FanStore(prepared_dataset, comm=comm) as fs:
            trainer = _make_trainer(
                fs, comm, ckpt_crash, epochs,
                crash_after=1 if comm.rank == 1 else None,
            )
            trainer.train()

    with pytest.raises(ParallelFailure) as exc_info:
        run_parallel(crashing, NODES, timeout=120)
    assert any(
        isinstance(e, _CrashAfterEpoch)
        for e in exc_info.value.errors.values()
    )

    # The shared FS holds the epoch-1 checkpoint (the §V-E resume point).
    mgr = CheckpointManager(ckpt_crash)
    assert mgr.latest() is not None
    assert mgr.latest().epoch == 1

    # Relaunch at the same scale and resume.
    def resumed(comm):
        with FanStore(prepared_dataset, comm=comm) as fs:
            trainer = _make_trainer(fs, comm, ckpt_crash, epochs)
            report = trainer.train(resume=True)
            return report.resumed_from_epoch, trainer.model.get_flat_params()

    results = run_parallel(resumed, NODES, timeout=120)
    for resumed_from, params in results:
        assert resumed_from == 1
        # deterministic loaders + averaged gradients ⇒ bit-identical
        # final state to the run that never crashed
        np.testing.assert_array_equal(params, reference)


def test_resume_requires_same_checkpoint_payload(prepared_dataset, tmp_path):
    """A corrupted resume point must be detected, not silently used."""
    ckpt = tmp_path / "ckpt"
    mgr = CheckpointManager(ckpt)
    mgr.save(0, {"params": [0.0] * 3})  # wrong parameter count

    def body(comm):
        with FanStore(prepared_dataset, comm=comm) as fs:
            trainer = _make_trainer(fs, comm, ckpt, 2)
            trainer.train(resume=True)

    with pytest.raises(ParallelFailure):
        run_parallel(body, 2, timeout=60)
