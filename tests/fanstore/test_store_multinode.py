"""Multi-node FanStore integration: partition placement, the metadata
allgather, remote fetch, extra-partition replication, the write path's
metadata forwarding, and teardown."""

from __future__ import annotations

import pytest

from repro.comm.launcher import run_parallel
from repro.errors import CapacityError
from repro.fanstore.daemon import DaemonConfig
from repro.fanstore.store import FanStore


class TestGlobalView:
    def test_every_rank_sees_identical_namespace(self, prepared_dataset):
        def body(comm):
            with FanStore(prepared_dataset, comm=comm) as fs:
                records = sorted(
                    (r.path, r.home_rank, r.stat.st_size)
                    for r in fs.daemon.metadata.walk_files()
                )
                return records

        results = run_parallel(body, 3, timeout=60)
        assert results[0] == results[1] == results[2]
        assert len(results[0]) == 15  # 12 train + 3 val

    def test_partition_round_robin_placement(self, prepared_dataset):
        def body(comm):
            with FanStore(prepared_dataset, comm=comm) as fs:
                local = [
                    r.partition_id
                    for r in fs.daemon.metadata.local_records(comm.rank)
                    if not r.is_broadcast
                ]
                return sorted(set(local))

        results = run_parallel(body, 3, timeout=60)
        assert results == [[0], [1], [2]]

    def test_broadcast_partition_local_everywhere(self, prepared_dataset):
        def body(comm):
            with FanStore(prepared_dataset, comm=comm) as fs:
                val_files = [
                    p for p in fs.client.listdir("val")
                ]
                # reading broadcast data must not touch the network
                before = fs.daemon.stats.remote_fetches
                for name in val_files:
                    fs.client.read_file(f"val/{name}")
                return fs.daemon.stats.remote_fetches - before

        assert run_parallel(body, 3, timeout=60) == [0, 0, 0]


class TestRemoteFetch:
    def test_all_ranks_read_all_files(self, prepared_dataset, raw_dataset_dir):
        def body(comm):
            with FanStore(prepared_dataset, comm=comm) as fs:
                total = 0
                for rec in fs.daemon.metadata.walk_files():
                    data = fs.client.read_file(rec.path)
                    assert len(data) == rec.stat.st_size
                    total += len(data)
                return (total, fs.daemon.stats.remote_fetches)

        results = run_parallel(body, 3, timeout=60)
        totals = {t for t, _ in results}
        assert len(totals) == 1  # same bytes everywhere
        # each rank fetched the ~2/3 of train files it doesn't host
        for _, remote in results:
            assert remote == 8  # 12 train files, 4 local per rank

    def test_remote_bytes_match_content(self, prepared_dataset, raw_dataset_dir):
        """Remote reads return the exact original file bytes."""
        originals = {
            str(p.relative_to(raw_dataset_dir / "train")): p.read_bytes()
            for p in sorted((raw_dataset_dir / "train").rglob("*"))
            if p.is_file()
        }

        def body(comm):
            with FanStore(prepared_dataset, comm=comm) as fs:
                for rel, raw in originals.items():
                    assert fs.client.read_file(rel) == raw
                return True

        assert all(run_parallel(body, 3, timeout=60))


class TestExtraPartitions:
    def test_replication_reduces_remote_fetches(self, prepared_dataset):
        config = DaemonConfig(extra_partition_budget=2)

        def body(comm):
            with FanStore(prepared_dataset, comm=comm, config=config) as fs:
                for rec in fs.daemon.metadata.walk_files():
                    fs.client.read_file(rec.path)
                return fs.daemon.stats.remote_fetches

        # with 3 ranks and budget 2, every rank holds every partition
        assert run_parallel(body, 3, timeout=60) == [0, 0, 0]


class TestWritePath:
    def test_output_metadata_forwarded_to_owner(self, prepared_dataset):
        def body(comm):
            with FanStore(prepared_dataset, comm=comm) as fs:
                path = f"out/rank{comm.rank}.bin"
                fs.client.write_file(path, bytes([comm.rank]) * 8)
                comm.barrier()
                # every rank can stat every output (via local table or
                # the hash-owner query)
                sizes = []
                for r in range(comm.size):
                    stat = fs.client.stat(f"out/rank{r}.bin")
                    sizes.append(stat.st_size)
                return sizes

        results = run_parallel(body, 3, timeout=60)
        assert all(sizes == [8, 8, 8] for sizes in results)


class TestCapacity:
    def test_burst_buffer_overflow_raises(self, prepared_dataset):
        config = DaemonConfig(capacity_bytes=10)  # absurdly small

        def body(comm):
            with FanStore(prepared_dataset, comm=comm, config=config):
                return True

        from repro.comm.launcher import ParallelFailure

        with pytest.raises(ParallelFailure) as exc_info:
            run_parallel(body, 3, timeout=60)
        assert any(
            isinstance(e, CapacityError)
            for e in exc_info.value.errors.values()
        )


class TestSingleNode:
    def test_verify_integrity(self, single_store):
        assert single_store.verify_integrity() == 15

    def test_mount_point_resolution(self, single_store):
        assert single_store.resolve("/fanstore/a/b") == "a/b"
        assert single_store.resolve("/fanstore") == ""
        assert single_store.resolve("already/relative") == "already/relative"

    def test_shutdown_idempotent(self, prepared_dataset):
        fs = FanStore(prepared_dataset)
        fs.shutdown()
        fs.shutdown()  # must not raise

    def test_num_files(self, single_store):
        assert single_store.num_files == 15
        assert single_store.rank == 0
        assert single_store.size == 1

    def test_disk_backend_store(self, prepared_dataset, tmp_path):
        with FanStore(prepared_dataset, local_dir=tmp_path / "local") as fs:
            assert fs.verify_integrity(sample=3) == 3
            assert len(list((tmp_path / "local").iterdir())) > 0
