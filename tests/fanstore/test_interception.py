"""User-space interception: the Python LD_PRELOAD equivalent."""

from __future__ import annotations

import builtins
import os
import os.path
import stat as stat_module

import pytest

from repro.fanstore.interception import intercept


@pytest.fixture()
def store(single_store):
    return single_store


class TestOpenInterception:
    def test_read_under_mount(self, store):
        name = store.client.listdir("cls0000")[0]
        with intercept(store):
            with open(f"/fanstore/cls0000/{name}", "rb") as f:
                data = f.read()
        assert data == store.client.read_file(f"cls0000/{name}")

    def test_text_mode(self, store):
        store.client.write_file("notes/a.txt", b"line\n")
        with intercept(store):
            with open("/fanstore/notes/a.txt") as f:
                assert f.read() == "line\n"

    def test_write_under_mount(self, store):
        with intercept(store):
            with open("/fanstore/out/w.bin", "wb") as f:
                f.write(b"written-via-interception")
        assert store.client.read_file("out/w.bin") == b"written-via-interception"

    def test_passthrough_outside_mount(self, store, tmp_path):
        real = tmp_path / "real.txt"
        real.write_text("on the real fs")
        with intercept(store):
            with open(real) as f:
                assert f.read() == "on the real fs"

    def test_restored_after_exit(self, store):
        original_open = builtins.open
        original_stat = os.stat
        with intercept(store):
            assert builtins.open is not original_open
        assert builtins.open is original_open
        assert os.stat is original_stat

    def test_restored_after_exception(self, store):
        original_open = builtins.open
        with pytest.raises(RuntimeError):
            with intercept(store):
                raise RuntimeError("boom")
        assert builtins.open is original_open


class TestMetadataInterception:
    def test_stat_fields(self, store):
        name = store.client.listdir("cls0000")[0]
        rel = f"cls0000/{name}"
        with intercept(store):
            result = os.stat(f"/fanstore/{rel}")
        assert result.st_size == store.client.stat(rel).st_size
        assert stat_module.S_ISREG(result.st_mode)

    def test_stat_directory(self, store):
        with intercept(store):
            result = os.stat("/fanstore/cls0000")
        assert stat_module.S_ISDIR(result.st_mode)

    def test_listdir(self, store):
        with intercept(store):
            names = os.listdir("/fanstore/cls0000")
        assert names == store.client.listdir("cls0000")

    def test_scandir_entries(self, store):
        with intercept(store):
            entries = list(os.scandir("/fanstore"))
            files = [e for e in entries if e.is_file()]
            dirs = [e for e in entries if e.is_dir()]
            assert {e.name for e in dirs} >= {"cls0000"}
            for e in entries:
                assert e.path.startswith("/fanstore/")
                assert not e.is_symlink()

    def test_scandir_stat(self, store):
        with intercept(store):
            entry = next(
                e for e in os.scandir("/fanstore/cls0000") if e.is_file()
            )
            assert entry.stat().st_size > 0

    def test_path_predicates(self, store):
        name = store.client.listdir("cls0000")[0]
        with intercept(store):
            assert os.path.exists(f"/fanstore/cls0000/{name}")
            assert os.path.isfile(f"/fanstore/cls0000/{name}")
            assert os.path.isdir("/fanstore/cls0000")
            assert not os.path.exists("/fanstore/nope")

    def test_missing_file_raises_filenotfound(self, store):
        with intercept(store):
            with pytest.raises(FileNotFoundError):
                open("/fanstore/ghost.bin", "rb")
            with pytest.raises(FileNotFoundError):
                os.stat("/fanstore/ghost.bin")


class TestTrainingStyleScan:
    def test_keras_style_enumeration(self, store):
        """The §II-B1 startup pattern: readdir every class directory,
        stat every file — entirely against the RAM table."""
        with intercept(store):
            classes = [
                d
                for d in os.listdir("/fanstore")
                if os.path.isdir(f"/fanstore/{d}") and d.startswith("cls")
            ]
            count = 0
            total = 0
            for c in classes:
                for name in os.listdir(f"/fanstore/{c}"):
                    st = os.stat(f"/fanstore/{c}/{name}")
                    total += st.st_size
                    count += 1
        assert count == 12
        assert total == store.daemon.metadata.total_original_bytes() - sum(
            store.client.stat(f"val/{n}").st_size
            for n in store.client.listdir("val")
        )


class TestOsWalkAndPathHelpers:
    def test_os_walk_traverses_the_mount(self, store):
        with intercept(store):
            walked = {
                dirpath: (sorted(dirnames), sorted(filenames))
                for dirpath, dirnames, filenames in os.walk("/fanstore")
            }
        root_dirs, root_files = walked["/fanstore"]
        assert "cls0000" in root_dirs
        assert walked["/fanstore/cls0000"][1]  # files present
        total_files = sum(len(f) for _, (_, f) in walked.items())
        assert total_files == 15

    def test_getsize_via_patched_stat(self, store):
        name = store.client.listdir("cls0000")[0]
        with intercept(store):
            size = os.path.getsize(f"/fanstore/cls0000/{name}")
        assert size == store.client.stat(f"cls0000/{name}").st_size

    def test_pathlib_open_and_read_bytes(self, store):
        import pathlib

        name = store.client.listdir("cls0000")[0]
        rel = f"cls0000/{name}"
        with intercept(store):
            p = pathlib.Path(f"/fanstore/{rel}")
            via_open = p.open("rb").read()
        assert via_open == store.client.read_file(rel)
