"""Gradient fusion buffering (§II-A's allreduce mechanism).

"In practice, the allreduce step uses a buffer, and an allreduce is
invoked once the buffer is full. Weight updates are streamlined with
allreduce operations." — this module implements that Horovod-style
mechanism over the in-process communicator:

- :class:`FusionBuffer` accumulates gradient tensors and triggers an
  averaging allreduce whenever the buffered bytes reach ``capacity``;
  tensors stream back to the caller in submission order once reduced.
- :func:`bucketed_allreduce` is the convenience path for one flat
  gradient vector split into fusion-buffer-sized buckets.
- :func:`modeled_allreduce_seconds` is the α–β cost of the same
  schedule, exposing the classic tuning curve (too-small buckets pay
  latency per bucket, one giant bucket forfeits pipelining overlap)
  that the fusion ablation benchmark sweeps.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
import numpy as np

from repro.comm.communicator import Communicator
from repro.errors import CommError
from repro.simnet.network import InterconnectModel


@dataclass
class FusionStats:
    """Accounting for the ablation benchmark."""

    allreduce_calls: int = 0
    bytes_reduced: int = 0
    tensors: int = 0


class FusionBuffer:
    """Capacity-triggered gradient averaging.

    Usage (per training step, every rank in the same order)::

        buf = FusionBuffer(comm, capacity_bytes=1 << 20)
        for grad in layer_gradients:
            buf.add(grad)
        averaged = buf.flush()     # rank-identical, submission order

    The buffer averages (sum/size) like data-parallel SGD expects.
    """

    def __init__(self, comm: Communicator, capacity_bytes: int) -> None:
        if capacity_bytes < 1:
            raise CommError(f"capacity must be >= 1 byte, got {capacity_bytes}")
        self.comm = comm
        self.capacity_bytes = capacity_bytes
        self.stats = FusionStats()
        self._pending: list[np.ndarray] = []
        self._pending_bytes = 0
        self._reduced: list[np.ndarray] = []

    def add(self, tensor: np.ndarray) -> None:
        """Queue one gradient tensor; reduces eagerly at capacity."""
        arr = np.asarray(tensor, dtype=np.float64)
        self._pending.append(arr)
        self._pending_bytes += arr.nbytes
        self.stats.tensors += 1
        if self._pending_bytes >= self.capacity_bytes:
            self._reduce_pending()

    def _reduce_pending(self) -> None:
        if not self._pending:
            return
        shapes = [a.shape for a in self._pending]
        flat = np.concatenate([a.ravel() for a in self._pending])
        total = self.comm.allreduce(flat, np.add) / self.comm.size
        self.stats.allreduce_calls += 1
        self.stats.bytes_reduced += flat.nbytes
        offset = 0
        for shape in shapes:
            n = int(np.prod(shape)) if shape else 1
            self._reduced.append(
                total[offset : offset + n].reshape(shape)
            )
            offset += n
        self._pending = []
        self._pending_bytes = 0

    def flush(self) -> list[np.ndarray]:
        """Reduce whatever remains; returns all tensors in order."""
        self._reduce_pending()
        out, self._reduced = self._reduced, []
        return out


def bucketed_allreduce(
    comm: Communicator, flat: np.ndarray, bucket_bytes: int
) -> np.ndarray:
    """Average one flat vector through fusion-sized buckets."""
    buf = FusionBuffer(comm, bucket_bytes)
    per_bucket = max(bucket_bytes // flat.itemsize, 1)
    for start in range(0, flat.size, per_bucket):
        buf.add(flat[start : start + per_bucket])
    pieces = buf.flush()
    if not pieces:
        return flat.copy()
    return np.concatenate([p.ravel() for p in pieces])


def modeled_allreduce_seconds(
    net: InterconnectModel,
    message_bytes: int,
    nodes: int,
    bucket_bytes: int,
    *,
    overlap_fraction: float = 0.5,
) -> float:
    """α–β cost of a bucketed allreduce schedule.

    Each of the ⌈message/bucket⌉ buckets pays the collective's latency
    term; the bandwidth term covers the full payload once; and because
    buckets can overlap backpropagation (the Horovod win), a fraction
    of the pre-final buckets' cost hides behind compute. Minimizing
    over ``bucket_bytes`` reproduces the classic fusion-tuning curve.
    """
    if nodes < 2:
        return 0.0
    if bucket_bytes < 1:
        raise CommError("bucket_bytes must be >= 1")
    buckets = max(math.ceil(message_bytes / bucket_bytes), 1)
    lat = 2.0 * math.ceil(math.log2(nodes)) * net.latency
    bw = 2.0 * (nodes - 1) / nodes * message_bytes / net.node_bandwidth
    total = buckets * lat + bw
    # all but the last bucket may overlap compute
    hidden = (
        overlap_fraction * (buckets - 1) / buckets * total
        if buckets > 1
        else 0.0
    )
    return total - hidden
