"""``fanstore-lint``: run the project-invariant passes from the shell.

Exit codes: 0 — no unwaived findings; 1 — unwaived findings (or a file
that does not parse); 2 — usage error. Waived findings never gate but
are listed under ``--show-waived`` so silenced rules stay visible in
review.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.analysis.core import run_lint


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="fanstore-lint",
        description=(
            "AST lint for FanStore's project invariants: lock order, "
            "blocking-under-lock, protocol conformance, error "
            "conventions, determinism, metric catalogue, deprecated "
            "facades. See docs/static-analysis.md."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--root",
        default=".",
        help="repo root, for display paths and docs lookups (default: cwd)",
    )
    parser.add_argument(
        "--rules",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format",
    )
    parser.add_argument(
        "--show-waived",
        action="store_true",
        help="also list findings suppressed by inline waivers",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rule ids and exit",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)

    from repro.analysis.passes import all_passes

    passes = all_passes()
    if args.list_rules:
        for p in passes:
            print(f"{p.rule}: {p.title}")
        return 0

    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        print(f"fanstore-lint: no such path: {', '.join(missing)}", file=sys.stderr)
        return 2

    rules = None
    if args.rules:
        rules = [r.strip() for r in args.rules.split(",") if r.strip()]
        known = {p.rule for p in passes}
        unknown = sorted(set(rules) - known)
        if unknown:
            print(
                f"fanstore-lint: unknown rule(s): {', '.join(unknown)} "
                f"(known: {', '.join(sorted(known))})",
                file=sys.stderr,
            )
            return 2

    report = run_lint(args.paths, root=Path(args.root), rules=rules, passes=passes)

    if args.format == "json":
        print(
            json.dumps(
                {
                    "summary": report.summary(),
                    "findings": [
                        f.to_dict()
                        for f in report.findings
                        if not f.waived or args.show_waived
                    ],
                },
                indent=2,
            )
        )
    else:
        for f in report.unwaived:
            print(f.render())
        if args.show_waived:
            for f in report.waived:
                print(f.render())
        print(report.summary())
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
