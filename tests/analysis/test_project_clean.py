"""Self-gate: the shipped src/ tree lints clean, and every waiver in it
carries a written reason (the same gate CI runs via ``fanstore-lint``)."""

from __future__ import annotations

from pathlib import Path

from repro.analysis.core import run_lint

REPO = Path(__file__).resolve().parents[2]


def test_src_tree_has_no_unwaived_findings():
    report = run_lint([REPO / "src"], root=REPO)
    assert report.ok, "\n".join(f.render() for f in report.unwaived)
    assert report.files_scanned > 50  # the whole tree, not a subset


def test_every_waiver_states_its_reason():
    report = run_lint([REPO / "src"], root=REPO)
    for finding in report.waived:
        assert finding.reason.strip(), finding.render()
