"""A TFRecord-compatible record file format (§III's "encapsulation"
baseline, Figure 6's comparison target).

Implements the actual TFRecord on-disk framing: per record an 8-byte LE
length, a 4-byte masked CRC32 of the length, the payload, and a 4-byte
masked CRC32 of the payload (the mask is TensorFlow's
``((crc >> 15) | (crc << 17)) + 0xa282ead8``). CRCs here use CRC-32
(zlib) rather than CRC-32C — consistent between our writer and reader,
which is what the benchmark requires.

The format's structural weakness — the reason Figure 6 shows FanStore
5–10× faster — is also reproduced: records have no index, so random
batch access must either scan sequentially or maintain an external
offset table, and every read re-frames and re-checksums the payload.
"""

from __future__ import annotations

import struct
import zlib
from pathlib import Path
from typing import BinaryIO, Iterator, Sequence

from repro.errors import FormatError

_LEN_STRUCT = struct.Struct("<Q")
_CRC_STRUCT = struct.Struct("<I")
_MASK_DELTA = 0xA282EAD8


def _masked_crc(data: bytes) -> int:
    crc = zlib.crc32(data) & 0xFFFFFFFF
    return (((crc >> 15) | (crc << 17)) + _MASK_DELTA) & 0xFFFFFFFF


class TFRecordWriter:
    """Sequential record writer."""

    def __init__(self, stream: BinaryIO) -> None:
        self._stream = stream

    def write(self, record: bytes) -> int:
        """Append one record; returns its starting byte offset."""
        offset = self._stream.tell()
        header = _LEN_STRUCT.pack(len(record))
        self._stream.write(header)
        self._stream.write(_CRC_STRUCT.pack(_masked_crc(header)))
        self._stream.write(record)
        self._stream.write(_CRC_STRUCT.pack(_masked_crc(record)))
        return offset


def write_tfrecord(path: Path | str, records: Sequence[bytes]) -> list[int]:
    """Write records to ``path``; returns their offsets (for the
    offset-index variant of the benchmark)."""
    offsets = []
    with open(path, "wb") as fh:
        writer = TFRecordWriter(fh)
        for r in records:
            offsets.append(writer.write(r))
    return offsets


class TFRecordReader:
    """Sequential and (offset-indexed) random record access."""

    def __init__(self, path: Path | str) -> None:
        self.path = Path(path)

    def _read_one(self, fh: BinaryIO) -> bytes | None:
        header = fh.read(_LEN_STRUCT.size)
        if not header:
            return None
        if len(header) != _LEN_STRUCT.size:
            raise FormatError("tfrecord: truncated length")
        (length,) = _LEN_STRUCT.unpack(header)
        crc_raw = fh.read(_CRC_STRUCT.size)
        if len(crc_raw) != _CRC_STRUCT.size:
            raise FormatError("tfrecord: truncated length crc")
        if _CRC_STRUCT.unpack(crc_raw)[0] != _masked_crc(header):
            raise FormatError("tfrecord: length crc mismatch")
        record = fh.read(length)
        if len(record) != length:
            raise FormatError("tfrecord: truncated record")
        crc_raw = fh.read(_CRC_STRUCT.size)
        if len(crc_raw) != _CRC_STRUCT.size:
            raise FormatError("tfrecord: truncated record crc")
        if _CRC_STRUCT.unpack(crc_raw)[0] != _masked_crc(record):
            raise FormatError("tfrecord: record crc mismatch")
        return record

    def __iter__(self) -> Iterator[bytes]:
        """Sequential scan — the access pattern TF input pipelines use."""
        with open(self.path, "rb") as fh:
            while True:
                record = self._read_one(fh)
                if record is None:
                    return
                yield record

    def read_at(self, offset: int) -> bytes:
        """Random access given an external offset index."""
        with open(self.path, "rb") as fh:
            fh.seek(offset)
            record = self._read_one(fh)
            if record is None:
                raise FormatError(f"tfrecord: no record at offset {offset}")
            return record

    def read_nth_sequential(self, n: int) -> bytes:
        """Random access *without* an index: scan from the start — the
        cost profile that makes shuffled access over TFRecord slow."""
        for i, record in enumerate(self):
            if i == n:
                return record
        raise FormatError(f"tfrecord: fewer than {n + 1} records")
