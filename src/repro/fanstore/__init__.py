"""FanStore: the distributed compressed object store (the paper's core).

Subsystems map one-to-one onto the paper's design sections:

- :mod:`~repro.fanstore.layout` — the compressed data representation (Table I)
- :mod:`~repro.fanstore.prepare` — the data-preparation tool (§V-B)
- :mod:`~repro.fanstore.metadata` — RAM metadata + global view (§IV-C1)
- :mod:`~repro.fanstore.cache` — refcounted FIFO decompressed cache (§IV-C3)
- :mod:`~repro.fanstore.backend` — RAM / local-disk compressed-object storage
- :mod:`~repro.fanstore.daemon` — the per-node service (§V-A, §V-D)
- :mod:`~repro.fanstore.client` — the POSIX-compliant interface (Listing 1)
- :mod:`~repro.fanstore.interception` — user-space call interposition (§V-C)
- :mod:`~repro.fanstore.store` — the per-node facade tying it together
- :mod:`~repro.fanstore.faults` — checkpoint/resume convention (§V-E)
- :mod:`~repro.fanstore.scrub` — background self-healing digest sweeps
- :mod:`~repro.fanstore.corruption` — deterministic storage-fault injection
- :mod:`~repro.fanstore.membership` — failure detection, re-replication,
  and live rank rejoin (the active layer over §IV-C2's replication)
- :mod:`~repro.fanstore.journal` — write-ahead journal, atomic store
  mutation, restart recovery
- :mod:`~repro.fanstore.crash` — deterministic crash-point and
  disk-fault injection
"""

from repro.fanstore.backend import DiskBackend, PartitionBackend, RamBackend
from repro.fanstore.cache import CacheStats, DecompressedCache
from repro.fanstore.client import (
    O_CREAT,
    O_RDONLY,
    O_WRONLY,
    FanStoreClient,
    FanStoreFile,
)
from repro.fanstore.corruption import (
    CorruptionEvent,
    StorageFaultPlan,
    corrupt_backend,
    corrupt_record,
)
from repro.fanstore.crash import (
    CRASH_POINTS,
    CrashPlan,
    DiskFaultInjector,
    SimulatedCrashError,
    crash_point,
)
from repro.fanstore.daemon import DaemonConfig, DaemonStats, FanStoreDaemon
from repro.fanstore.faults import Checkpoint, CheckpointManager
from repro.fanstore.interception import intercept
from repro.fanstore.journal import (
    Journal,
    JournalConfig,
    JournalStats,
    atomic_open,
    atomic_replace,
    fsync_dir,
    scan_journal,
)
from repro.fanstore.layout import (
    FLAG_BROADCAST,
    FLAG_HAS_DIGEST,
    FLAG_OUTPUT,
    FileStat,
    PartitionEntry,
    blob_crc32,
    entry_payload_ok,
    iter_partition,
    read_partition,
    write_partition,
)
from repro.fanstore.membership import (
    ClusterView,
    FailureDetector,
    MembershipConfig,
    MembershipStats,
    RankState,
    ring_successor,
)
from repro.fanstore.metadata import (
    FileRecord,
    MetadataTable,
    RereplicationStep,
    normalize,
)
from repro.fanstore.prepare import PreparedDataset, prepare_dataset
from repro.fanstore.scrub import ScrubReport, Scrubber
from repro.fanstore.store import FanStore, FanStoreOptions

__all__ = [
    "FanStore",
    "FanStoreOptions",
    "FanStoreClient",
    "FanStoreFile",
    "FanStoreDaemon",
    "DaemonConfig",
    "DaemonStats",
    "DecompressedCache",
    "CacheStats",
    "RamBackend",
    "DiskBackend",
    "PartitionBackend",
    "MetadataTable",
    "FileRecord",
    "normalize",
    "FileStat",
    "PartitionEntry",
    "write_partition",
    "read_partition",
    "iter_partition",
    "FLAG_BROADCAST",
    "FLAG_OUTPUT",
    "FLAG_HAS_DIGEST",
    "blob_crc32",
    "entry_payload_ok",
    "prepare_dataset",
    "PreparedDataset",
    "intercept",
    "CheckpointManager",
    "Checkpoint",
    "Scrubber",
    "ScrubReport",
    "ClusterView",
    "FailureDetector",
    "MembershipConfig",
    "MembershipStats",
    "RankState",
    "RereplicationStep",
    "ring_successor",
    "StorageFaultPlan",
    "CorruptionEvent",
    "corrupt_record",
    "corrupt_backend",
    "CRASH_POINTS",
    "CrashPlan",
    "DiskFaultInjector",
    "SimulatedCrashError",
    "crash_point",
    "Journal",
    "JournalConfig",
    "JournalStats",
    "atomic_open",
    "atomic_replace",
    "fsync_dir",
    "scan_journal",
    "O_RDONLY",
    "O_WRONLY",
    "O_CREAT",
]
