"""The write-ahead journal in isolation: record encoding, the
commit-after-durable-apply protocol, torn-tail detection, group
commit, rotation/compaction, brownout, and the crash/disk injectors
that drive the integration drills."""

from __future__ import annotations

import json
import threading
import zlib

import pytest

from repro.errors import FanStoreError, StorageFullError
from repro.fanstore.crash import (
    CRASH_POINTS,
    CrashPlan,
    DiskFaultInjector,
    SimulatedCrashError,
    crash_point,
)
from repro.fanstore.journal import (
    Journal,
    JournalConfig,
    JournalStats,
    atomic_open,
    atomic_replace,
    scan_journal,
)

SMALL = JournalConfig(
    segment_max_bytes=512,
    segment_max_records=4,
    max_segments=3,
    low_watermark_bytes=0,  # tests run on tmpfs-ish CI disks
)


@pytest.fixture()
def jdir(tmp_path):
    return tmp_path / "journal"


class TestAtomicApply:
    def test_replace_installs_bytes(self, tmp_path):
        target = tmp_path / "blob"
        atomic_replace(target, b"hello")
        assert target.read_bytes() == b"hello"
        atomic_replace(target, b"world")
        assert target.read_bytes() == b"world"

    def test_replace_accepts_str(self, tmp_path):
        atomic_replace(tmp_path / "t", "text")
        assert (tmp_path / "t").read_bytes() == b"text"

    def test_no_tmp_left_behind(self, tmp_path):
        atomic_replace(tmp_path / "blob", b"x" * 100)
        assert list(tmp_path.glob("*.tmp")) == []

    def test_crash_before_rename_preserves_old_bytes(self, tmp_path):
        target = tmp_path / "blob"
        atomic_replace(target, b"old")
        with CrashPlan(seed=1).crash_at("apply.tmp_written"):
            with pytest.raises(SimulatedCrashError):
                atomic_replace(target, b"new")
        assert target.read_bytes() == b"old"
        # the simulated kill -9 leaves the tmp orphan for recovery GC
        assert len(list(tmp_path.glob("*.tmp"))) == 1

    def test_clean_failure_removes_tmp(self, tmp_path, monkeypatch):
        import repro.fanstore.journal as journal_mod

        def boom(src, dst):
            raise OSError("injected rename failure")

        monkeypatch.setattr(journal_mod.os, "replace", boom)
        with pytest.raises(OSError, match="injected"):
            atomic_replace(tmp_path / "blob", b"data")
        assert list(tmp_path.glob("*.tmp")) == []

    def test_atomic_open_streams_then_renames(self, tmp_path):
        target = tmp_path / "part"
        with atomic_open(target) as fh:
            fh.write(b"abc")
            fh.write(b"def")
            assert not target.exists()
        assert target.read_bytes() == b"abcdef"
        assert list(tmp_path.glob("*.tmp")) == []

    def test_atomic_open_error_leaves_nothing(self, tmp_path):
        target = tmp_path / "part"
        with pytest.raises(RuntimeError):
            with atomic_open(target) as fh:
                fh.write(b"half")
                raise RuntimeError("writer died")
        assert not target.exists()
        assert list(tmp_path.glob("*.tmp")) == []


class TestJournalProtocol:
    def test_begin_commit_then_scan(self, jdir):
        j = Journal(jdir, config=SMALL)
        data = b"payload-bytes"
        seq = j.begin("write", "out/a", data)
        j.commit(seq)
        j.close()
        log = scan_journal(jdir)
        (intent,) = log.committed
        assert intent["op"] == "write"
        assert intent["path"] == "out/a"
        assert intent["crc"] == zlib.crc32(data)
        assert intent["size"] == len(data)
        assert bytes.fromhex(intent["payload"]) == data
        assert log.uncommitted == []

    def test_uncommitted_intent_scans_as_uncommitted(self, jdir):
        j = Journal(jdir, config=SMALL)
        j.begin("write", "out/torn", b"never-acked")
        j.close()
        log = scan_journal(jdir)
        assert log.committed == []
        assert [i["path"] for i in log.uncommitted] == ["out/torn"]

    def test_large_payload_not_embedded(self, jdir):
        j = Journal(jdir, config=SMALL)
        seq = j.begin("write", "out/big", b"z" * 8192)
        j.commit(seq)
        j.close()
        (intent,) = scan_journal(jdir).committed
        assert "payload" not in intent
        assert intent["size"] == 8192

    def test_commit_of_unknown_seq_raises(self, jdir):
        j = Journal(jdir, config=SMALL)
        with pytest.raises(FanStoreError, match="unknown intent"):
            j.commit(12345)
        j.close()

    def test_abort_unpins_and_counts(self, jdir):
        stats = JournalStats()
        j = Journal(jdir, config=SMALL, stats=stats)
        seq = j.begin("write", "out/fail", b"data")
        assert j.pending_intents == 1
        j.abort(seq)
        assert j.pending_intents == 0
        assert stats.journal_aborts == 1
        j.close()
        assert scan_journal(jdir).uncommitted != []  # record stays on disk

    def test_closed_journal_refuses_appends(self, jdir):
        j = Journal(jdir, config=SMALL)
        j.close()
        with pytest.raises(FanStoreError, match="closed"):
            j.begin("write", "out/late", b"x")

    def test_reopen_adopts_committed_live_state(self, jdir):
        j = Journal(jdir, config=SMALL)
        j.commit(j.begin("write", "out/a", b"aa"))
        j.begin("write", "out/b", b"bb")  # never committed
        j.close()
        j2 = Journal(jdir, config=SMALL)
        live = j2.live_state()
        assert set(live) == {"out/a"}
        assert live["out/a"]["crc"] == zlib.crc32(b"aa")
        j2.close()

    def test_sequence_numbers_never_regress_across_reopen(self, jdir):
        j = Journal(jdir, config=SMALL)
        last = 0
        for i in range(3):
            last = j.begin("write", f"out/{i}", b"x")
            j.commit(last)
        j.close()
        j2 = Journal(jdir, config=SMALL)
        assert j2.begin("write", "out/next", b"y") > last
        j2.close()


class TestTornTail:
    def test_torn_tail_discarded_not_trusted(self, jdir):
        j = Journal(jdir, config=SMALL)
        j.commit(j.begin("write", "out/good", b"good"))
        j.close()
        (seg,) = sorted(jdir.glob("segment-*.waj"))
        with open(seg, "ab") as fh:
            fh.write(b"deadbeef {\"t\":\"intent\",\"half")  # no newline
        log = scan_journal(jdir)
        assert [i["path"] for i in log.committed] == ["out/good"]
        assert log.torn_records == 1

    def test_records_after_torn_line_distrusted(self, jdir):
        j = Journal(jdir, config=SMALL)
        j.commit(j.begin("write", "out/first", b"1"))
        j.commit(j.begin("write", "out/second", b"2"))
        j.close()
        (seg,) = sorted(jdir.glob("segment-*.waj"))
        lines = seg.read_bytes().splitlines(keepends=True)
        # lines are [intent-1, commit-1, intent-2, commit-2]; corrupt
        # the second intent — everything after it must be dropped
        lines[2] = b"00000000 " + lines[2][9:]
        seg.write_bytes(b"".join(lines))  # lint: allow[durable-write] test corrupts its own fixture on purpose
        log = scan_journal(jdir)
        assert [i["path"] for i in log.committed] == ["out/first"]
        assert log.torn_records >= 1

    def test_corrupt_checkpoint_ignored(self, jdir):
        j = Journal(jdir, config=SMALL)
        j.commit(j.begin("write", "out/a", b"aa"))
        j.close()
        ckpt = jdir / "checkpoint.json"
        blob = json.loads(ckpt.read_text())
        blob["seq"] = 999  # digest no longer matches
        ckpt.write_text(json.dumps(blob))  # lint: allow[durable-write] test corrupts its own fixture on purpose
        log = scan_journal(jdir)
        assert log.torn_records == 1
        assert log.checkpoint_seq == 0  # distrusted entirely
        # the committed record is still recoverable from the segments
        assert [i["path"] for i in log.committed] == ["out/a"]


class TestRotationAndCompaction:
    def test_rotation_at_record_bound(self, jdir):
        stats = JournalStats()
        j = Journal(jdir, config=SMALL, stats=stats)
        for i in range(10):
            j.commit(j.begin("write", f"out/{i}", b"x"))
        assert stats.journal_rotations > 0
        j.close()

    def test_compaction_bounds_segments(self, jdir):
        stats = JournalStats()
        j = Journal(jdir, config=SMALL, stats=stats)
        for i in range(64):
            j.commit(j.begin("write", f"out/{i}", b"y" * 32))
        assert stats.journal_compactions > 0
        assert len(list(jdir.glob("segment-*.waj"))) <= SMALL.max_segments
        assert not j.read_only
        j.close()

    def test_checkpoint_supersedes_segments(self, jdir):
        j = Journal(jdir, config=SMALL)
        for i in range(8):
            j.commit(j.begin("write", f"out/{i}", bytes([i])))
        j.close()
        # reopen: open-time compaction folds everything into the
        # checkpoint and starts one fresh empty segment
        j2 = Journal(jdir, config=SMALL)
        assert len(list(jdir.glob("segment-*.waj"))) == 1
        assert set(j2.live_state()) == {f"out/{i}" for i in range(8)}
        j2.close()

    def test_brownout_when_pins_prevent_compaction(self, jdir):
        stats = JournalStats()
        j = Journal(jdir, config=SMALL, stats=stats)
        # uncommitted intents pin their segments: enough of them spread
        # across rotations forces the count past max_segments, and the
        # journal browns out rather than growing without bound
        with pytest.raises(StorageFullError):
            for i in range(100):
                j.begin("write", f"out/{i}", b"p" * 48)
        assert j.read_only
        assert stats.read_only == 1
        assert stats.storage_full_errors >= 1
        j.close()

    def test_brownout_clears_when_intents_drain(self, jdir):
        j = Journal(jdir, config=SMALL)
        seqs = []
        with pytest.raises(StorageFullError):
            for i in range(100):
                seqs.append(j.begin("write", f"out/{i}", b"p" * 48))
        assert j.read_only
        for seq in seqs:
            j.commit(seq)
        assert not j.read_only  # commit() retries compaction
        j.begin("write", "out/after", b"x")
        j.close()


class TestGroupCommit:
    def test_concurrent_writers_coalesce_fsyncs(self, jdir):
        stats = JournalStats()
        j = Journal(jdir, config=JournalConfig(low_watermark_bytes=0),
                    stats=stats)
        n, per = 8, 25
        errors: list[BaseException] = []

        def writer(tid: int) -> None:
            try:
                for i in range(per):
                    j.commit(j.begin("write", f"out/{tid}/{i}", b"d"))
            except BaseException as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=writer, args=(t,)) for t in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        j.close()
        assert errors == []
        # every record hit a barrier, but far fewer fsyncs than records
        assert stats.journal_commits == n * per
        assert stats.journal_fsyncs < stats.journal_appends
        assert stats.journal_coalesced_syncs > 0

    def test_all_writes_survive_concurrent_run(self, jdir):
        j = Journal(jdir, config=JournalConfig(low_watermark_bytes=0))
        n, per = 4, 10

        def writer(tid: int) -> None:
            for i in range(per):
                j.commit(j.begin("write", f"out/{tid}/{i}", b"d"))

        threads = [threading.Thread(target=writer, args=(t,)) for t in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        j.close()
        j2 = Journal(jdir, config=SMALL)
        assert len(j2.live_state()) == n * per
        j2.close()


class TestStorageExhaustion:
    def test_low_watermark_refuses_before_journalling(self, jdir):
        stats = JournalStats()
        inj = DiskFaultInjector().set_free_bytes(1024)
        j = Journal(
            jdir,
            config=JournalConfig(low_watermark_bytes=1 << 20),
            stats=stats,
            injector=inj,
        )
        with pytest.raises(StorageFullError) as exc_info:
            j.begin("write", "out/full", b"x")
        err = exc_info.value
        import errno as _errno
        assert err.errno == _errno.ENOSPC
        assert err.filename == "out/full"
        assert stats.storage_full_errors == 1
        assert scan_journal(jdir).uncommitted == []  # refused pre-append
        j.close()

    def test_injector_fail_puts_budget(self):
        import errno as _errno
        inj = DiskFaultInjector().fail_puts("out/*", times=2)
        with pytest.raises(OSError) as e1:
            inj.check_put("out/a")
        assert e1.value.errno == _errno.ENOSPC
        with pytest.raises(OSError):
            inj.check_put("out/b")
        inj.check_put("out/c")  # budget exhausted: no error
        inj.check_put("other/path")
        assert inj.errors_injected == 2


class TestCrashPlan:
    def test_unknown_point_rejected(self):
        with pytest.raises(ValueError, match="unknown crash point"):
            CrashPlan().crash_at("no.such.point")
        with pytest.raises(ValueError, match="unknown crash point"):
            crash_point("no.such.point")

    def test_registered_points_are_free_when_unarmed(self):
        for name in CRASH_POINTS:
            crash_point(name, rank=0)  # no plan armed: must not raise

    def test_fires_exactly_once_by_default(self):
        plan = CrashPlan(seed=3).crash_at("apply.done")
        with plan:
            with pytest.raises(SimulatedCrashError) as exc_info:
                crash_point("apply.done", rank=2)
            assert exc_info.value.point == "apply.done"
            assert exc_info.value.rank == 2
            crash_point("apply.done", rank=2)  # budget spent
        assert plan.crashes_delivered == 1
        (event,) = plan.events
        assert event.fired and event.occurrence == 1

    def test_skip_spares_early_occurrences(self):
        plan = CrashPlan().crash_at("journal.commit", skip=2)
        with plan:
            crash_point("journal.commit")
            crash_point("journal.commit")
            with pytest.raises(SimulatedCrashError):
                crash_point("journal.commit")

    def test_rank_filter(self):
        plan = CrashPlan().crash_at("apply.renamed", rank=1)
        with plan:
            crash_point("apply.renamed", rank=0)
            with pytest.raises(SimulatedCrashError):
                crash_point("apply.renamed", rank=1)

    def test_probability_replays_bit_identically(self):
        def run(seed: int) -> list[bool]:
            plan = CrashPlan(seed).crash_at(
                "journal.intent", probability=0.5, times=100
            )
            outcomes = []
            with plan:
                for _ in range(50):
                    try:
                        crash_point("journal.intent")
                        outcomes.append(False)
                    except SimulatedCrashError:
                        outcomes.append(True)
            return outcomes

        assert run(8) == run(8)
        assert run(8) != run(888)  # and the seed actually matters

    def test_uninstall_disarms(self):
        plan = CrashPlan().crash_at("apply.done")
        plan.install()
        plan.uninstall()
        crash_point("apply.done")  # disarmed: must not raise

    def test_simulated_crash_is_not_an_exception(self):
        # `except Exception` recovery arms must never absorb it
        assert not issubclass(SimulatedCrashError, Exception)


class TestJournalCrashPoints:
    def test_crash_at_intent_leaves_uncommitted_record(self, jdir):
        j = Journal(jdir, config=SMALL)
        with CrashPlan().crash_at("journal.intent"):
            with pytest.raises(SimulatedCrashError):
                j.begin("write", "out/x", b"data")
        j.close()
        log = scan_journal(jdir)
        assert [i["path"] for i in log.uncommitted] == ["out/x"]
        assert log.committed == []

    def test_crash_at_commit_still_counts_as_committed(self, jdir):
        j = Journal(jdir, config=SMALL)
        seq = j.begin("write", "out/x", b"data")
        with CrashPlan().crash_at("journal.commit"):
            with pytest.raises(SimulatedCrashError):
                j.commit(seq)
        j.close()
        # the commit record was durable before the crash point fired:
        # recovery must roll this intent forward, not back
        log = scan_journal(jdir)
        assert [i["path"] for i in log.committed] == ["out/x"]


class TestStatsBinding:
    def test_bind_registers_durability_names(self):
        from repro.obs.metrics import MetricsRegistry

        reg = MetricsRegistry(rank=0, label="t")
        stats = JournalStats()
        stats.bind(reg)
        names = set(reg.names())
        assert "durability.journal.appends" in names
        assert "durability.journal.commits" in names
        assert "durability.recovery.replayed" in names
        assert "durability.read_only" in names
        assert "durability.recovery.seconds" in names
