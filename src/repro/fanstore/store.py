"""The FanStore facade (§V-A).

Ties the pieces together the way a user launches the real system:
prepare once, then on every node construct a ``FanStore`` with that
node's communicator — the constructor loads partitions, exchanges
metadata, and starts the daemon service; the object then exposes the
POSIX client plus lifecycle management.

Single-node usage needs no communicator::

    prepared = prepare_dataset("raw_data/", "packed/", compressor="lz4hc")
    with FanStore(prepared) as fs:
        names = fs.client.listdir("train")
        first = fs.client.read_file(f"train/{names[0]}")

Multi-node usage, inside :func:`repro.comm.run_parallel`::

    def node_main(comm):
        with FanStore(prepared, comm=comm) as fs:
            ...  # every rank sees the identical namespace

``shutdown`` (or context exit) is collective when a communicator is
present: a barrier guarantees no peer still needs this daemon's data
before the service loop stops.
"""

from __future__ import annotations

from pathlib import Path

from repro.comm.communicator import Communicator
from repro.compressors.registry import CompressorRegistry
from repro.errors import FanStoreError
from repro.fanstore.backend import DiskBackend, PartitionBackend, RamBackend
from repro.fanstore.client import FanStoreClient
from repro.fanstore.daemon import DaemonConfig, FanStoreDaemon
from repro.fanstore.membership import FailureDetector, MembershipConfig
from repro.fanstore.prepare import PreparedDataset
from repro.fanstore.scrub import ScrubReport, Scrubber


class FanStore:
    """One node's view of the shared compressed object store."""

    def __init__(
        self,
        prepared: PreparedDataset | Path | str,
        *,
        comm: Communicator | None = None,
        config: DaemonConfig | None = None,
        local_dir: Path | str | None = None,
        backend: RamBackend | DiskBackend | PartitionBackend | None = None,
        registry: CompressorRegistry | None = None,
        mount_point: str = "/fanstore",
        membership: MembershipConfig | bool | None = None,
        rejoin_peer: int | None = None,
    ) -> None:
        """``membership`` opts into the self-healing layer: a
        :class:`~repro.fanstore.membership.FailureDetector` runs on a
        background thread, dead homes are routed around, and lost
        records are automatically re-replicated (pass ``True`` for the
        default :class:`MembershipConfig`). ``rejoin_peer`` constructs
        the store as a *relaunched* incarnation of its rank: partitions
        are re-staged off the shared FS (never a collective — the
        original cohort's collective sequence has moved on), metadata
        comes from the peer's join snapshot, and the store only returns
        after the peer verified a read against it and promoted it back
        to ALIVE. ``rejoin_peer`` implies ``membership``."""
        if isinstance(prepared, (str, Path)):
            prepared = PreparedDataset.load(prepared)
        self.prepared = prepared
        self.mount_point = mount_point.rstrip("/") or "/fanstore"
        if backend is None:
            backend = (
                DiskBackend(local_dir) if local_dir is not None else RamBackend()
            )
        self.daemon = FanStoreDaemon(
            comm, config=config, backend=backend, registry=registry
        )
        self.client = FanStoreClient(self.daemon)
        self.membership: FailureDetector | None = None
        self._active = False
        self._rejoined = rejoin_peer is not None
        if rejoin_peer is not None and comm is None:
            raise FanStoreError("rejoin_peer requires a communicator")
        if rejoin_peer is not None:
            membership = membership or True
        if self._rejoined:
            self.daemon.load_rejoin(prepared)
        else:
            self.daemon.load(prepared)
        self.daemon.start()
        if membership and comm is not None:
            cfg = membership if isinstance(membership, MembershipConfig) else None
            self.membership = FailureDetector(comm, cfg)
            self.daemon.attach_membership(self.membership)
        if self._rejoined:
            assert self.membership is not None and rejoin_peer is not None
            snapshot = self.membership.request_join(rejoin_peer)
            if snapshot is not None:
                self.daemon.apply_membership_snapshot(snapshot)
            self.membership.request_promotion(rejoin_peer)
        if self.membership is not None:
            self.membership.start()
        self._active = True

    # -- lifecycle ----------------------------------------------------------

    def shutdown(self) -> None:
        """Collective teardown: barrier (everyone done reading), then
        stop the service loop. Safe to call twice.

        The barrier is skipped once membership history exists (a death,
        a rejoin, or this store *being* a rejoined incarnation):
        collectives need the full original cohort, which by definition
        no longer exists — callers in that regime sequence their own
        teardown (see the membership drill for the pairwise pattern)."""
        if not self._active:
            return
        self._active = False
        if self.membership is not None:
            self.membership.stop()
        view = self.daemon.current_view()
        collective_safe = not self._rejoined and (
            view is None or view.epoch == 0
        )
        if self.daemon.comm is not None and collective_safe:
            self.daemon.comm.barrier()
        self.daemon.stop()

    def __enter__(self) -> "FanStore":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    # -- introspection ---------------------------------------------------------

    @property
    def rank(self) -> int:
        return self.daemon.rank

    @property
    def size(self) -> int:
        return self.daemon.size

    @property
    def num_files(self) -> int:
        return len(self.daemon.metadata)

    def export_ownership(self) -> dict:
        """This rank's post-membership ownership map (view epoch,
        per-path home + replicas) — feed it to ``fanstore-inspect
        --ownership`` so offline repair consults the *current* owners."""
        return self.daemon.export_ownership()

    def resolve(self, path: str) -> str:
        """Strip the mount point from an absolute path (§V-A: directory
        ``dir/cate1/file1`` is accessible as ``/fs/dir/cate1/file1``)."""
        if path.startswith(self.mount_point + "/"):
            return path[len(self.mount_point) + 1 :]
        if path == self.mount_point:
            return ""
        return path

    def verify_integrity(self, sample: int | None = None) -> int:
        """End-to-end read check: decompress (up to ``sample``) files
        through the full client path and compare sizes against their
        stat records; returns the number verified. Because the read path
        digest-checks every compressed payload (and self-repairs via the
        failover ladder), this also exercises verify-on-read. For a
        digest sweep that does *not* decompress — and that reports
        instead of raising — see :meth:`scrub`."""
        checked = 0
        for record in self.daemon.metadata.walk_files():
            if sample is not None and checked >= sample:
                break
            if record.home_rank != self.rank and self.daemon.comm is None:
                continue
            data = self.client.read_file(record.path)
            if len(data) != record.stat.st_size:
                raise FanStoreError(
                    f"{record.path}: integrity check failed "
                    f"({len(data)} != {record.stat.st_size})"
                )
            checked += 1
        return checked

    def scrubber(
        self,
        *,
        repair: bool = True,
        deep: bool = False,
        batch: int = 32,
        rate_limit_bytes_per_s: float | None = None,
        interval_s: float = 0.0,
    ) -> Scrubber:
        """A :class:`~repro.fanstore.scrub.Scrubber` over this rank's
        records — drive it incrementally (``step()``), in one pass
        (``run()``), or as a background thread (``start()``)."""
        return Scrubber(
            self.daemon,
            repair=repair,
            deep=deep,
            batch=batch,
            rate_limit_bytes_per_s=rate_limit_bytes_per_s,
            interval_s=interval_s,
        )

    def scrub(
        self,
        sample: int | None = None,
        *,
        repair: bool = True,
        deep: bool = False,
    ) -> ScrubReport:
        """One full digest sweep over the records staged on this rank,
        healing mismatches through the failover ladder when ``repair``
        is set; returns the :class:`~repro.fanstore.scrub.ScrubReport`."""
        return self.scrubber(repair=repair, deep=deep).run(sample)
