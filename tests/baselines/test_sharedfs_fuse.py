"""Shared-FS and FUSE baselines: aggregate contention and crossing
overheads."""

from __future__ import annotations

import pytest

from repro.baselines.fuse import (
    FuseLikeClient,
    read_cost_breakdown,
)
from repro.baselines.sharedfs import SharedFileSystem, default_lustre
from repro.errors import SimulationError
from repro.util.units import KIB, MB


class TestSharedFileSystem:
    def test_startup_scales_with_procs_and_files(self):
        fs = default_lustre()
        base = fs.startup_seconds(1, 10_000)
        assert fs.startup_seconds(96, 10_000) == pytest.approx(
            96 * base, rel=0.05
        )

    def test_paper_512node_metadata_storm(self):
        """512 nodes × 2 procs enumerating 1.3 M ImageNet files through
        one MDS takes hours — the paper's non-start."""
        fs = default_lustre()
        t = fs.startup_seconds(512 * 2, 1_300_000, num_dirs=2_002)
        assert t > 3600 * 24  # days — training never starts

    def test_single_client_matches_device_model(self):
        fs = default_lustre()
        t = fs.batch_read_seconds(1, 10, 1 * MB)
        per_file_floor = fs.client_model.read_time(1 * MB)
        assert t >= 10 * per_file_floor

    def test_aggregate_bandwidth_saturates(self):
        fs = default_lustre()
        tpt_small = fs.effective_files_per_second(4, 64, 1 * MB)
        tpt_large = fs.effective_files_per_second(512, 64, 1 * MB)
        # per-reader throughput collapses under contention
        assert tpt_large / 512 < tpt_small / 4

    def test_validation(self):
        fs = default_lustre()
        with pytest.raises(SimulationError):
            fs.startup_seconds(0, 10)
        with pytest.raises(SimulationError):
            fs.batch_read_seconds(1, 0, 10)
        with pytest.raises(SimulationError):
            SharedFileSystem(client_model=fs.client_model,
                             mds_ops_per_second=0)


class TestFuseBreakdown:
    def test_crossings_count(self):
        bd = read_cost_breakdown(512 * KIB)
        assert bd.crossings == 4  # 512 KiB / 128 KiB

    def test_small_file_is_overhead_dominated(self):
        bd = read_cost_breakdown(4 * KIB)
        assert bd.overhead_fraction > 0.5

    def test_total_matches_device_model(self):
        from repro.simnet.devices import fuse_over_ssd

        model = fuse_over_ssd()
        bd = read_cost_breakdown(512 * KIB, model)
        assert bd.total_seconds == pytest.approx(
            model.read_time(512 * KIB)
        )


class TestFuseLikeClient:
    def test_chunked_read_returns_same_bytes(self, single_store):
        client = single_store.client
        name = client.listdir("cls0000")[0]
        fuse = FuseLikeClient(client)
        assert fuse.read_file(f"cls0000/{name}") == client.read_file(
            f"cls0000/{name}"
        )

    def test_stat_passthrough(self, single_store):
        fuse = FuseLikeClient(single_store.client)
        name = single_store.client.listdir("cls0000")[0]
        assert fuse.stat(f"cls0000/{name}").st_size > 0
