"""Hostile-input fuzzing of the partition reader: arbitrary bytes must
raise FormatError (or decode cleanly), never crash, hang, or over-read."""

from __future__ import annotations

import io

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FormatError
from repro.fanstore.layout import (
    FileStat,
    read_partition,
    write_partition,
)


@settings(max_examples=120, deadline=None)
@given(garbage=st.binary(max_size=2048))
def test_arbitrary_bytes_never_crash(garbage):
    try:
        entries = read_partition(io.BytesIO(garbage))
    except FormatError:
        return
    # If it decoded, the claimed structure must be self-consistent.
    for e in entries:
        assert e.compressed_size == len(e.data or b"")


@settings(max_examples=60, deadline=None)
@given(
    payloads=st.lists(st.binary(max_size=100), min_size=1, max_size=4),
    cut=st.integers(min_value=1, max_value=400),
)
def test_truncations_always_detected(payloads, cut):
    """Every strict prefix of a valid partition either fails cleanly or
    (when the cut lands on an entry boundary) yields fewer entries
    without corrupting any."""
    buf = io.BytesIO()
    write_partition(
        [
            (f"f{i}", 0, FileStat(st_size=len(p)), p)
            for i, p in enumerate(payloads)
        ],
        buf,
    )
    raw = buf.getvalue()
    prefix = raw[: min(cut, len(raw) - 1)]
    try:
        read_partition(io.BytesIO(prefix))
    except FormatError:
        pass  # the expected outcome for mid-entry cuts


@settings(max_examples=60, deadline=None)
@given(
    payloads=st.lists(st.binary(max_size=100), min_size=1, max_size=4),
    pos=st.integers(min_value=0, max_value=500),
    flip=st.integers(min_value=1, max_value=255),
)
def test_bitflips_never_hang_or_overread(payloads, pos, flip):
    buf = io.BytesIO()
    write_partition(
        [
            (f"dir/f{i}", 1, FileStat(st_size=len(p)), p)
            for i, p in enumerate(payloads)
        ],
        buf,
    )
    raw = bytearray(buf.getvalue())
    raw[pos % len(raw)] ^= flip
    try:
        entries = read_partition(io.BytesIO(bytes(raw)))
    except FormatError:
        return
    for e in entries:
        assert len(e.data or b"") == e.compressed_size
        assert len(e.path) < 256


def test_count_lies_high():
    """A count header claiming more entries than exist must fail."""
    buf = io.BytesIO()
    write_partition([("a", 0, FileStat(), b"xy")], buf)
    raw = bytearray(buf.getvalue())
    raw[0] = 200  # count = 200
    with pytest.raises(FormatError):
        read_partition(io.BytesIO(bytes(raw)))


def test_giant_claimed_size_fails_fast():
    """An entry whose size field claims 2^60 bytes must not allocate."""
    buf = io.BytesIO()
    write_partition([("a", 0, FileStat(), b"xy")], buf)
    raw = bytearray(buf.getvalue())
    size_off = 4 + 256 + 2 + 144
    raw[size_off : size_off + 8] = (1 << 60).to_bytes(8, "little")
    with pytest.raises(FormatError):
        read_partition(io.BytesIO(bytes(raw)))
