"""The functional data-parallel trainer (§II-A).

Implements the paper's training loop for real: each rank reads its
share of the batch through FanStore, computes gradients on its (tiny
numpy) model replica, averages them with ``allreduce``, and applies the
identical update everywhere — so replicas stay bit-identical, which the
integration tests assert. Epoch boundaries write epoch-numbered
checkpoints (§V-E) and a training log through the FanStore write path
(§II-B3's three output types).

With a ``membership`` detector attached the trainer goes *elastic*:
gradient averaging runs over a point-to-point gather/broadcast rooted
at the lowest non-DEAD rank instead of the world collectives (which
rendezvous with *every* rank of the original cohort and therefore can
never complete once one is dead), so survivors of a mid-run node loss
keep taking steps — the paper's §IV-C2 replication promise carried all
the way up to the training loop. Steps whose reduction ran over fewer
than the full world are counted in ``TrainReport.elastic_steps``.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.comm.communicator import ANY_SOURCE, Communicator
from repro.comm.fusion import bucketed_allreduce
from repro.errors import (
    CommClosedError,
    CommError,
    RankDeadError,
    ReproError,
)
from repro.fanstore.client import FanStoreClient
from repro.fanstore.faults import CheckpointManager
from repro.fanstore.membership import FailureDetector
from repro.training.loader import Batch, SyncLoader
from repro.training.models import softmax_cross_entropy

#: tag band of the elastic allreduce: step ``s`` gathers on
#: ``base + 2s`` and broadcasts on ``base + 2s + 1`` — far above the
#: daemon's per-rank reply bands (``0x1000 + rank·10⁶``, so ranks would
#: need to exceed ~1073 to reach it) and the membership tags, and never
#: reused, so a straggling message from an abandoned attempt rots
#: harmlessly.
_ELASTIC_TAG_BASE = 0x40000000


@dataclass
class TrainReport:
    """What one rank observed over a training run."""

    iterations: int = 0
    epochs_completed: int = 0
    losses: list[float] = field(default_factory=list)
    bytes_read: int = 0
    wall_seconds: float = 0.0
    resumed_from_epoch: int | None = None
    iteration_seconds: list[float] = field(default_factory=list)
    #: steps whose gradient reduction ran elastically — over fewer
    #: contributors than the launch-time world (a peer was dead or
    #: unreachable), including the solo-fallback case.
    elastic_steps: int = 0

    @property
    def final_loss(self) -> float:
        if not self.losses:
            raise ReproError("no iterations ran")
        return self.losses[-1]

    @property
    def mean_iteration_seconds(self) -> float:
        if not self.iteration_seconds:
            return 0.0
        return sum(self.iteration_seconds) / len(self.iteration_seconds)


#: collate callback: a Batch → (inputs, integer labels) numpy pair.
Collator = Callable[[Batch], tuple[np.ndarray, np.ndarray]]

#: distinct default log names per trainer instance within one process.
_run_counter = itertools.count()


class DataParallelTrainer:
    """SGD with gradient allreduce over the in-process communicator."""

    def __init__(
        self,
        model,
        loader: SyncLoader,
        collate: Collator,
        *,
        comm: Communicator | None = None,
        lr: float = 0.05,
        checkpoints: CheckpointManager | None = None,
        log_client: FanStoreClient | None = None,
        log_path: str | None = None,
        fusion_bytes: int | None = None,
        comm_timeout: float | None = None,
        membership: FailureDetector | None = None,
        elastic_timeout: float = 2.0,
        elastic_deadline: float = 20.0,
        metrics=None,
    ) -> None:
        self.model = model
        self.loader = loader
        self.collate = collate
        self.comm = comm
        self.lr = lr
        self.checkpoints = checkpoints
        self.log_client = log_client
        #: membership view source; when set, gradient averaging runs
        #: over the elastic p2p path (collectives would hang forever on
        #: a dead rank) and checkpoint/log writing falls to the lowest
        #: *non-dead* rank instead of a possibly-dead rank 0.
        self.membership = membership
        #: per-attempt bound inside one elastic reduction (gather wait,
        #: result wait); timing out re-reads the view and re-routes.
        self.elastic_timeout = elastic_timeout
        #: total bound for one step's reduction; past it the rank takes
        #: a solo step with its local gradients rather than failing.
        self.elastic_deadline = elastic_deadline
        # FanStore seals output files at close (single-write model), so
        # each run gets a distinct default log name instead of appending.
        if log_path is None:
            log_path = f"logs/train-{next(_run_counter):04d}.log"
        self.log_path = log_path
        #: §II-A's fusion buffer: gradients allreduce in buckets of this
        #: many bytes instead of one monolithic call. None = monolithic.
        self.fusion_bytes = fusion_bytes
        #: bound on each gradient allreduce (None = communicator
        #: default). Fault-recovery drills set this low so survivors of
        #: a dead rank abort the epoch in seconds, not at the default
        #: collective timeout.
        self.comm_timeout = comm_timeout
        #: optional :class:`repro.obs.metrics.MetricsRegistry`: when
        #: given (usually ``fanstore.metrics``, so trainer and daemon
        #: share one snapshot), every step is broken into the
        #: ``trainer.{data,compute,allreduce,step}_seconds`` phase
        #: histograms — the paper's "is I/O the bottleneck?" question
        #: answered per run instead of per paper.
        self.metrics = metrics
        self._h_data = self._h_compute = self._h_reduce = self._h_step = None
        self._c_steps = None
        if metrics is not None:
            self._h_data = metrics.histogram("trainer.data_seconds")
            self._h_compute = metrics.histogram("trainer.compute_seconds")
            self._h_reduce = metrics.histogram("trainer.allreduce_seconds")
            self._h_step = metrics.histogram("trainer.step_seconds")
            self._c_steps = metrics.counter("trainer.steps")

    # -- checkpoint plumbing ------------------------------------------------

    def _is_writer(self) -> bool:
        """Whether this rank writes checkpoints and the log: rank 0
        normally, the lowest non-DEAD rank once a membership view says
        rank 0 (or whoever preceded us) is gone — a dead writer must
        not orphan the run's checkpoints. Quorum-gated: the detector's
        :meth:`~repro.fanstore.membership.FailureDetector.elect_writer`
        returns None on the minority side of a partition, so an
        ISOLATED rank never writes — two sides of a split must not
        each elect a writer and clobber the checkpoint stream."""
        if self.comm is None:
            return True
        if self.membership is not None:
            writer = self.membership.elect_writer()
            return writer is not None and self.comm.rank == writer
        return self.comm.rank == 0

    def _save_checkpoint(self, epoch: int) -> None:
        if self.checkpoints is None:
            return
        if self._is_writer():
            self.checkpoints.save(
                epoch, {"params": self.model.get_flat_params().tolist()}
            )

    def _try_resume(self) -> int | None:
        """Restore the latest checkpoint (§V-E); returns its epoch."""
        if self.checkpoints is None:
            return None
        latest = self.checkpoints.latest()
        if latest is None:
            return None
        self.model.set_flat_params(
            np.asarray(latest.payload["params"], dtype=np.float64)
        )
        return latest.epoch

    # -- the loop -------------------------------------------------------------

    def train(self, *, resume: bool = False) -> TrainReport:
        report = TrainReport()
        start_epoch = -1
        if resume:
            resumed = self._try_resume()
            if resumed is not None:
                start_epoch = resumed
                report.resumed_from_epoch = resumed
        start = time.perf_counter()
        current_epoch: int | None = None
        log_lines: list[str] = []
        prev_end = start
        for batch in self.loader:
            if batch.epoch <= start_epoch:
                prev_end = time.perf_counter()  # skipped batches are not
                continue  # data-wait; skip epochs covered by the checkpoint
            if current_epoch is None:
                current_epoch = batch.epoch
            elif batch.epoch != current_epoch:
                self._on_epoch_end(current_epoch, report, log_lines)
                current_epoch = batch.epoch
            it_start = time.perf_counter()
            x, labels = self.collate(batch)
            loss, grads = self.model.loss_and_gradients(x, labels)
            t_compute = time.perf_counter()
            if self.comm is not None and self.comm.size > 1:
                if self.membership is not None:
                    grads, loss = self._elastic_allreduce(
                        grads, float(loss), report.iterations, report
                    )
                else:
                    kw = {} if self.comm_timeout is None else {
                        "timeout": self.comm_timeout
                    }
                    if self.fusion_bytes is not None:
                        grads = bucketed_allreduce(
                            self.comm, grads, self.fusion_bytes
                        )
                    else:
                        grads = self.comm.allreduce(grads, np.add, **kw) / self.comm.size
                    loss = self.comm.allreduce(loss, lambda a, b: a + b, **kw) / self.comm.size
            t_reduce = time.perf_counter()
            self.model.apply_gradients(grads, self.lr)
            report.iterations += 1
            report.losses.append(float(loss))
            report.bytes_read += batch.bytes_read
            it_end = time.perf_counter()
            report.iteration_seconds.append(it_end - it_start)
            if self._h_step is not None:
                # data = time spent inside the loader between iterations
                self._h_data.observe(it_start - prev_end)
                self._h_compute.observe(t_compute - it_start)
                self._h_reduce.observe(t_reduce - t_compute)
                self._h_step.observe(it_end - prev_end)
                self._c_steps.inc()
            prev_end = it_end
        if current_epoch is not None:
            self._on_epoch_end(current_epoch, report, log_lines)
        report.wall_seconds = time.perf_counter() - start
        self._flush_log(log_lines)
        return report

    # -- elastic gradient averaging -----------------------------------------

    def _elastic_allreduce(
        self, grads: np.ndarray, loss: float, step: int, report: TrainReport
    ) -> tuple[np.ndarray, float]:
        """Membership-aware replacement for the gradient ``allreduce``.

        The world collectives rendezvous with every launch-time rank, so
        one corpse stalls them forever; this path instead gathers the
        per-rank ``(grads, loss)`` at a root — the lowest non-DEAD rank
        in the current view — which averages over whoever arrived and
        broadcasts ``(mean_grads, mean_loss, n)`` back. A timeout at any
        point re-reads the view and re-routes (the root itself may have
        just died); past ``elastic_deadline`` the rank takes a solo step
        with its local gradients instead of failing the training step.
        Survivors stay bit-identical with each other because they all
        apply the root's averaged result.
        """
        comm = self.comm
        assert comm is not None and self.membership is not None
        gather_tag = _ELASTIC_TAG_BASE + 2 * step
        result_tag = gather_tag + 1
        deadline = time.monotonic() + self.elastic_deadline
        while True:
            view = self.membership.view
            participants = set(view.non_dead_ranks()) | {comm.rank}
            root = min(participants)
            try:
                if comm.rank == root:
                    return self._elastic_root(
                        grads, loss, participants, gather_tag, result_tag,
                        report,
                    )
                comm.send((grads, loss), root, gather_tag)
                mean_grads, mean_loss, n = comm.recv(
                    root, result_tag, timeout=self.elastic_timeout
                )
                if n < comm.size:
                    report.elastic_steps += 1
                return mean_grads, mean_loss
            except (RankDeadError, CommClosedError):
                raise  # this rank is the corpse / world teardown
            except CommError:
                if time.monotonic() >= deadline:
                    # solo step: local gradients beat a failed run
                    report.elastic_steps += 1
                    return grads, loss
                # re-read the view — the root may have been convicted —
                # and retry on whatever route it now prescribes

    def _elastic_root(
        self,
        grads: np.ndarray,
        loss: float,
        participants: set[int],
        gather_tag: int,
        result_tag: int,
        report: TrainReport,
    ) -> tuple[np.ndarray, float]:
        """Root side of one elastic reduction: gather whoever shows up
        within the attempt budget, average, broadcast back. Late or
        duplicate contributions on the step's tag are harmless — the
        tag is never reused and resends carry identical payloads."""
        comm = self.comm
        assert comm is not None
        contributions: dict[int, tuple[np.ndarray, float]] = {
            comm.rank: (grads, loss)
        }
        expected = participants - set(contributions)
        gather_deadline = time.monotonic() + self.elastic_timeout
        while expected:
            budget = gather_deadline - time.monotonic()
            if budget <= 0:
                break
            try:
                payload, source, _tag = comm.recv_with_status(
                    ANY_SOURCE, gather_tag, timeout=budget
                )
            except (RankDeadError, CommClosedError):
                raise
            except CommError:
                break  # attempt budget spent: average over who arrived
            contributions[source] = payload
            expected.discard(source)
        n = len(contributions)
        mean_grads = sum(g for g, _ in contributions.values()) / n
        mean_loss = sum(l for _, l in contributions.values()) / n
        # broadcast to every participant, contributor or not: a rank
        # whose contribution arrived late still finds this result when
        # it re-routes here, and applies the same update as everyone
        # (its gradients are lost for the step; its replica is not)
        for dest in participants:
            if dest == comm.rank:
                continue
            try:
                comm.send((mean_grads, mean_loss, n), dest, result_tag)
            except (RankDeadError, CommClosedError):
                raise
            except CommError:
                pass  # that peer will retry or take a solo step
        if n < comm.size:
            report.elastic_steps += 1
        return mean_grads, mean_loss

    def _on_epoch_end(
        self, epoch: int, report: TrainReport, log_lines: list[str]
    ) -> None:
        report.epochs_completed += 1
        self._save_checkpoint(epoch)
        log_lines.append(
            f"epoch={epoch} iterations={report.iterations} "
            f"loss={report.losses[-1]:.4f}\n"
        )

    def evaluate(self, loader: SyncLoader) -> tuple[float, float]:
        """Validation pass: mean loss and accuracy over a loader.

        Meant for the *broadcast* partition (§V-B): every node holds the
        full validation set locally, so each rank can evaluate the whole
        thing without any interconnect traffic — rank-identical replicas
        make the result identical everywhere, no reduction needed.
        """
        losses: list[float] = []
        correct = 0
        total = 0
        for batch in loader:
            x, labels = self.collate(batch)
            logits = self.model.forward(x)
            loss, _ = softmax_cross_entropy(logits, labels)
            losses.append(loss)
            correct += int((logits.argmax(axis=1) == labels).sum())
            total += len(labels)
        if total == 0:
            raise ReproError("evaluate() saw no samples")
        return float(np.mean(losses)), correct / total

    def _flush_log(self, log_lines: list[str]) -> None:
        """§II-B3: the write-once log file, through the FanStore path."""
        if self.log_client is None or not log_lines:
            return
        if self._is_writer():
            self.log_client.write_file(
                self.log_path, "".join(log_lines).encode("utf-8")
            )


def make_array_collate(
    feature_shape: Sequence[int], num_classes: int, dtype=np.float64
) -> Collator:
    """A collator for decoders that emit ``(features, label)`` tuples."""

    def _collate(batch: Batch) -> tuple[np.ndarray, np.ndarray]:
        xs = np.stack(
            [np.asarray(s[0], dtype=dtype).reshape(feature_shape) for s in batch.samples]
        )
        ys = np.asarray([int(s[1]) % num_classes for s in batch.samples])
        return xs, ys

    return _collate
