"""*error-conventions*: the POSIX-emulation contract at the VFS edge.

The client is a drop-in for ``os.open``/``pread``/``lseek`` consumers,
so an exception escaping it must behave like the one the real syscall
would raise: an ``OSError`` subclass whose ``errno`` and ``filename``
are populated (``DataIntegrityError`` is the model). Two checks:

1. every project exception class that *is* OSError-family must define
   (or inherit from a project ancestor) an ``__init__`` that assigns
   both ``self.errno`` and ``self.filename`` — default construction
   with a bare message leaves ``errno`` as ``None`` and breaks callers
   that switch on it;
2. ``raise`` statements in the VFS-boundary module
   (``fanstore/client.py``) may only construct OSError-family
   exceptions — a bare ``FanStoreError`` or ``ValueError`` surfacing
   through ``pread`` has no errno for the caller to map.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.core import Finding, LintPass, Project, SourceFile

OSERROR_BUILTINS = {
    "OSError",
    "IOError",
    "EnvironmentError",
    "BlockingIOError",
    "BrokenPipeError",
    "ChildProcessError",
    "ConnectionError",
    "ConnectionAbortedError",
    "ConnectionRefusedError",
    "ConnectionResetError",
    "FileExistsError",
    "FileNotFoundError",
    "InterruptedError",
    "IsADirectoryError",
    "NotADirectoryError",
    "PermissionError",
    "ProcessLookupError",
    "TimeoutError",
}

NON_OSERROR_BUILTINS = {
    "Exception",
    "BaseException",
    "ValueError",
    "TypeError",
    "KeyError",
    "IndexError",
    "LookupError",
    "AttributeError",
    "RuntimeError",
    "NotImplementedError",
    "StopIteration",
    "ArithmeticError",
    "ZeroDivisionError",
    "AssertionError",
}

_BOUNDARY_SUFFIX = "fanstore/client.py"


def _base_name(node: ast.expr) -> str | None:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


class _Hierarchy:
    """Project-wide exception class graph."""

    def __init__(self, project: Project) -> None:
        self.defs: dict[str, tuple[SourceFile, ast.ClassDef]] = {}
        self.bases: dict[str, list[str]] = {}
        for src in project:
            for node in ast.walk(src.tree):
                if isinstance(node, ast.ClassDef):
                    self.defs.setdefault(node.name, (src, node))
                    self.bases.setdefault(
                        node.name,
                        [b for b in map(_base_name, node.bases) if b],
                    )
        self._os_family: dict[str, bool] = {}

    def is_os_family(self, name: str, _seen: frozenset = frozenset()) -> bool:
        if name in self._os_family:
            return self._os_family[name]
        if name in OSERROR_BUILTINS:
            return True
        if name in _seen or name not in self.bases:
            return False
        result = any(
            self.is_os_family(b, _seen | {name}) for b in self.bases[name]
        )
        self._os_family[name] = result
        return result

    def init_sets_errno_filename(
        self, name: str, _seen: frozenset = frozenset()
    ) -> bool:
        """Does this class (or a project ancestor) define an __init__
        assigning both self.errno and self.filename?"""
        if name in _seen or name not in self.defs:
            return False
        _src, node = self.defs[name]
        for item in node.body:
            if isinstance(item, ast.FunctionDef) and item.name == "__init__":
                assigned = set()
                for sub in ast.walk(item):
                    if (
                        isinstance(sub, (ast.Assign, ast.AnnAssign))
                    ):
                        targets = (
                            sub.targets
                            if isinstance(sub, ast.Assign)
                            else [sub.target]
                        )
                        for t in targets:
                            if (
                                isinstance(t, ast.Attribute)
                                and isinstance(t.value, ast.Name)
                                and t.value.id == "self"
                            ):
                                assigned.add(t.attr)
                return {"errno", "filename"} <= assigned
        return any(
            self.init_sets_errno_filename(b, _seen | {name})
            for b in self.bases.get(name, [])
        )


class ErrorConventionsPass(LintPass):
    rule = "error-conventions"
    title = "VFS-boundary exceptions carry errno + filename"

    def run(self, project: Project) -> Iterable[Finding]:
        hier = _Hierarchy(project)
        findings: list[Finding] = []

        # 1: definition side
        for name, (src, node) in sorted(hier.defs.items()):
            if not hier.is_os_family(name):
                continue
            if not hier.init_sets_errno_filename(name):
                findings.append(
                    self.finding(
                        src,
                        node,
                        f"{name} is OSError-family but no __init__ in its "
                        "project hierarchy sets self.errno and "
                        "self.filename; default construction leaves errno "
                        "None at the VFS boundary",
                    )
                )

        # 2: raise side, boundary module only
        for src in project:
            display = src.display.replace("\\", "/")
            if not display.endswith(_BOUNDARY_SUFFIX):
                continue
            for node in ast.walk(src.tree):
                if not isinstance(node, ast.Raise) or node.exc is None:
                    continue
                ctor = node.exc
                if isinstance(ctor, ast.Call):
                    ctor = ctor.func
                name = _base_name(ctor)
                if name is None:
                    continue
                if isinstance(node.exc, ast.Name):
                    continue  # re-raise of a caught instance
                if hier.is_os_family(name):
                    continue
                if name in hier.defs or name in NON_OSERROR_BUILTINS:
                    findings.append(
                        self.finding(
                            src,
                            node,
                            f"raises {name} across the VFS boundary; the "
                            "POSIX-emulation contract requires an "
                            "OSError-family exception carrying errno + "
                            "filename",
                        )
                    )
        return findings
