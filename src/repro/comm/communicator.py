"""A thread-per-rank, MPI-like communicator.

FanStore's four communication sites (§V-D: metadata allgather, extra-
partition ring copy, remote file retrieval, write-metadata forwarding)
run over MPI in the paper. This module provides the in-process
equivalent: a :class:`World` holding the shared rendezvous state and a
:class:`Communicator` handle per rank, with mpi4py-style lowercase
methods (arbitrary picklable payloads — here passed by reference, since
ranks share one address space and FanStore only ships immutable bytes).

Semantics implemented:

- tagged point-to-point ``send``/``recv`` with ``ANY_SOURCE``/``ANY_TAG``
  wildcards and FIFO ordering per (source, tag) pair;
- non-blocking ``isend``/``irecv`` returning :class:`Request`;
- collectives ``barrier``, ``bcast``, ``gather``, ``scatter``,
  ``allgather``, ``alltoall``, ``reduce``, ``allreduce`` — all ranks
  must call them in the same order (the MPI contract); a per-rank
  sequence number enforces pairing across concurrent collectives.

Deadlock safety: every blocking call accepts a ``timeout`` (seconds) and
raises :class:`~repro.errors.CommError` on expiry, so a test that
mis-pairs operations fails instead of hanging.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.errors import CommClosedError, CommError, RankError

#: wildcard constants (mirroring MPI).
ANY_SOURCE = -1
ANY_TAG = -1

_DEFAULT_TIMEOUT = 60.0


@dataclass
class _Message:
    source: int
    tag: int
    payload: Any


class Request:
    """Handle for a non-blocking operation (mpi4py's ``Request``)."""

    __slots__ = ("_done", "_value", "_error", "_cond")

    def __init__(self) -> None:
        self._done = False
        self._value: Any = None
        self._error: BaseException | None = None
        self._cond = threading.Condition()

    def _complete(self, value: Any = None, error: BaseException | None = None) -> None:
        with self._cond:
            self._done = True
            self._value = value
            self._error = error
            self._cond.notify_all()

    def test(self) -> bool:
        """True once the operation has completed."""
        with self._cond:
            return self._done

    def wait(self, timeout: float | None = _DEFAULT_TIMEOUT) -> Any:
        """Block until completion; returns the received payload (irecv)
        or None (isend)."""
        with self._cond:
            if not self._cond.wait_for(lambda: self._done, timeout):
                raise CommError("request timed out")
            if self._error is not None:
                raise self._error
            return self._value


class _Mailbox:
    """Per-rank tagged message store with wildcard matching."""

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._messages: list[_Message] = []
        self._closed = False

    def put(self, msg: _Message) -> None:
        with self._cond:
            if self._closed:
                raise CommClosedError("mailbox closed")
            self._messages.append(msg)
            self._cond.notify_all()

    def _match(self, source: int, tag: int) -> _Message | None:
        for i, msg in enumerate(self._messages):
            if source not in (ANY_SOURCE, msg.source):
                continue
            if tag not in (ANY_TAG, msg.tag):
                continue
            return self._messages.pop(i)
        return None

    def get(
        self, source: int, tag: int, timeout: float | None
    ) -> _Message:
        with self._cond:
            msg = self._match(source, tag)
            if msg is not None:
                return msg

            def ready() -> bool:
                return self._closed or self._match_peek(source, tag)

            if not self._cond.wait_for(ready, timeout):
                raise CommError(
                    f"recv(source={source}, tag={tag}) timed out after {timeout}s"
                )
            if self._closed and not self._match_peek(source, tag):
                raise CommClosedError("world torn down during recv")
            msg = self._match(source, tag)
            assert msg is not None
            return msg

    def _match_peek(self, source: int, tag: int) -> bool:
        return any(
            source in (ANY_SOURCE, m.source) and tag in (ANY_TAG, m.tag)
            for m in self._messages
        )

    def try_get(self, source: int, tag: int) -> _Message | None:
        """Non-blocking matching receive; None when nothing matches."""
        with self._cond:
            msg = self._match(source, tag)
            if msg is not None:
                return msg
            if self._closed:
                raise CommClosedError("mailbox closed")
            return None

    def close(self) -> None:
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    def reopen(self) -> None:
        """Re-arm a closed mailbox for a relaunched rank. Stale mail
        addressed to the previous incarnation is discarded — a fresh
        process must not consume a corpse's backlog."""
        with self._cond:
            self._closed = False
            self._messages.clear()
            self._cond.notify_all()


class _CollectiveSlot:
    """Rendezvous buffer for one collective invocation (one seq number)."""

    def __init__(self, size: int) -> None:
        self.cond = threading.Condition()
        self.values: dict[int, Any] = {}
        self.size = size
        self.departed = 0
        self.closed = False

    def deposit_and_wait(self, rank: int, value: Any, timeout: float | None) -> dict:
        with self.cond:
            self.values[rank] = value
            self.cond.notify_all()
            if not self.cond.wait_for(
                lambda: self.closed or len(self.values) == self.size, timeout
            ):
                raise CommError(
                    f"collective timed out ({len(self.values)}/{self.size} arrived)"
                )
            if self.closed and len(self.values) != self.size:
                raise CommClosedError("world torn down during collective")
            return self.values

    def close(self) -> None:
        with self.cond:
            self.closed = True
            self.cond.notify_all()


class World:
    """Shared state for a group of ``size`` ranks."""

    def __init__(self, size: int) -> None:
        if size < 1:
            raise RankError(f"world size must be >= 1, got {size}")
        self.size = size
        self._mailboxes = [_Mailbox() for _ in range(size)]
        self._coll_lock = threading.Lock()
        self._coll_slots: dict[int, _CollectiveSlot] = {}
        self._closed = False

    def comm(self, rank: int) -> "Communicator":
        """The communicator handle for ``rank``."""
        if not 0 <= rank < self.size:
            raise RankError(f"rank {rank} outside [0, {self.size})")
        return Communicator(self, rank)

    def comms(self) -> list["Communicator"]:
        """Handles for every rank, index = rank."""
        return [self.comm(r) for r in range(self.size)]

    def _collective_slot(self, seq: int) -> _CollectiveSlot:
        with self._coll_lock:
            slot = self._coll_slots.get(seq)
            if slot is None:
                slot = _CollectiveSlot(self.size)
                if self._closed:  # late arrival after teardown
                    slot.closed = True
                self._coll_slots[seq] = slot
            return slot

    def _retire_slot(self, seq: int) -> None:
        with self._coll_lock:
            slot = self._coll_slots.get(seq)
            if slot is None:
                return
            slot.departed += 1
            if slot.departed == self.size:
                del self._coll_slots[seq]

    def close(self) -> None:
        """Tear down: unblocks pending recvs *and* collectives with
        CommClosedError (a failed rank must not leave its peers parked
        at an allreduce until timeout)."""
        self._closed = True
        for mb in self._mailboxes:
            mb.close()
        with self._coll_lock:
            slots = list(self._coll_slots.values())
        for slot in slots:
            slot.close()


class Communicator:
    """One rank's endpoint into a :class:`World`.

    Each rank must use its communicator from a single thread (collective
    sequence numbers are per-handle state), matching how one FanStore
    daemon process uses MPI.
    """

    def __init__(self, world: World, rank: int) -> None:
        self.world = world
        self.rank = rank
        self._coll_seq = 0

    @property
    def size(self) -> int:
        return self.world.size

    def _check_rank(self, rank: int, *, wildcard_ok: bool = False) -> None:
        if wildcard_ok and rank == ANY_SOURCE:
            return
        if not 0 <= rank < self.size:
            raise RankError(f"rank {rank} outside [0, {self.size})")

    # -- point to point ---------------------------------------------------

    def send(self, payload: Any, dest: int, tag: int = 0) -> None:
        """Deliver ``payload`` to ``dest``'s mailbox (eager, non-blocking
        in practice since mailboxes are unbounded)."""
        self._check_rank(dest)
        if tag < 0:
            raise CommError(f"tag must be >= 0, got {tag}")
        self.world._mailboxes[dest].put(_Message(self.rank, tag, payload))

    def recv(
        self,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        timeout: float | None = _DEFAULT_TIMEOUT,
    ) -> Any:
        """Receive one matching message's payload."""
        self._check_rank(source, wildcard_ok=True)
        msg = self.world._mailboxes[self.rank].get(source, tag, timeout)
        return msg.payload

    def recv_with_status(
        self,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        timeout: float | None = _DEFAULT_TIMEOUT,
    ) -> tuple[Any, int, int]:
        """Like :meth:`recv` but also returns ``(payload, source, tag)``."""
        self._check_rank(source, wildcard_ok=True)
        msg = self.world._mailboxes[self.rank].get(source, tag, timeout)
        return msg.payload, msg.source, msg.tag

    def try_recv(
        self, source: int = ANY_SOURCE, tag: int = ANY_TAG
    ) -> tuple[Any, int, int] | None:
        """Non-blocking receive: ``(payload, source, tag)`` of one
        matching message, or None when none is queued. This is the
        heartbeat drain primitive — a failure detector must poll its tag
        space without parking a thread per peer."""
        self._check_rank(source, wildcard_ok=True)
        msg = self.world._mailboxes[self.rank].try_get(source, tag)
        if msg is None:
            return None
        return msg.payload, msg.source, msg.tag

    def isend(self, payload: Any, dest: int, tag: int = 0) -> Request:
        """Non-blocking send; completes immediately (eager protocol)."""
        req = Request()
        try:
            self.send(payload, dest, tag)
        except BaseException as exc:  # propagate through wait()
            req._complete(error=exc)
        else:
            req._complete()
        return req

    def irecv(
        self, source: int = ANY_SOURCE, tag: int = ANY_TAG
    ) -> Request:
        """Non-blocking receive serviced by a helper thread."""
        req = Request()

        def _worker() -> None:
            try:
                payload = self.recv(source, tag, timeout=None)
            except BaseException as exc:
                req._complete(error=exc)
            else:
                req._complete(payload)

        threading.Thread(target=_worker, daemon=True).start()
        return req

    # -- collectives -------------------------------------------------------

    def _exchange(self, value: Any, timeout: float | None) -> dict[int, Any]:
        seq = self._coll_seq
        self._coll_seq += 1
        slot = self.world._collective_slot(seq)
        values = slot.deposit_and_wait(self.rank, value, timeout)
        result = dict(values)
        self.world._retire_slot(seq)
        return result

    def barrier(self, timeout: float | None = _DEFAULT_TIMEOUT) -> None:
        """Block until every rank has arrived."""
        self._exchange(None, timeout)

    def allgather(
        self, value: Any, timeout: float | None = _DEFAULT_TIMEOUT
    ) -> list[Any]:
        """Every rank contributes one value; all receive the rank-ordered
        list. This is the §IV-C1 global-metadata-view primitive."""
        values = self._exchange(value, timeout)
        return [values[r] for r in range(self.size)]

    def bcast(
        self, value: Any, root: int = 0, timeout: float | None = _DEFAULT_TIMEOUT
    ) -> Any:
        """Root's value is returned on every rank."""
        self._check_rank(root)
        values = self._exchange(value if self.rank == root else None, timeout)
        return values[root]

    def gather(
        self, value: Any, root: int = 0, timeout: float | None = _DEFAULT_TIMEOUT
    ) -> list[Any] | None:
        """All values to root (rank order); None elsewhere."""
        self._check_rank(root)
        values = self._exchange(value, timeout)
        if self.rank != root:
            return None
        return [values[r] for r in range(self.size)]

    def scatter(
        self,
        values: Sequence[Any] | None,
        root: int = 0,
        timeout: float | None = _DEFAULT_TIMEOUT,
    ) -> Any:
        """Root supplies one value per rank; each rank gets its own."""
        self._check_rank(root)
        if self.rank == root:
            if values is None or len(values) != self.size:
                raise CommError(
                    f"scatter at root needs exactly {self.size} values"
                )
            contributed: Any = list(values)
        else:
            contributed = None
        all_values = self._exchange(contributed, timeout)
        return all_values[root][self.rank]

    def alltoall(
        self, values: Sequence[Any], timeout: float | None = _DEFAULT_TIMEOUT
    ) -> list[Any]:
        """Rank i's j-th value goes to rank j's i-th slot."""
        if len(values) != self.size:
            raise CommError(f"alltoall needs exactly {self.size} values")
        exchanged = self._exchange(list(values), timeout)
        return [exchanged[r][self.rank] for r in range(self.size)]

    def reduce(
        self,
        value: Any,
        op: Callable[[Any, Any], Any],
        root: int = 0,
        timeout: float | None = _DEFAULT_TIMEOUT,
    ) -> Any | None:
        """Pairwise-fold all values at root (rank order); None elsewhere."""
        self._check_rank(root)
        values = self._exchange(value, timeout)
        if self.rank != root:
            return None
        acc = values[0]
        for r in range(1, self.size):
            acc = op(acc, values[r])
        return acc

    def allreduce(
        self,
        value: Any,
        op: Callable[[Any, Any], Any],
        timeout: float | None = _DEFAULT_TIMEOUT,
    ) -> Any:
        """Reduce then deliver to all ranks — the gradient-averaging
        primitive of data-parallel training (§II-A)."""
        values = self._exchange(value, timeout)
        acc = values[0]
        for r in range(1, self.size):
            acc = op(acc, values[r])
        return acc
