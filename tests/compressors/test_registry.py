"""Registry semantics: ids, aliases, uniqueness, error paths."""

from __future__ import annotations

import pytest

from repro.compressors.lz77 import Lz77Codec
from repro.compressors.null import NullCodec
from repro.compressors.registry import (
    PAPER_ALIASES,
    RAW_ID,
    RAW_NAME,
    CompressorRegistry,
    build_default_registry,
    get_compressor,
    list_compressors,
)
from repro.errors import UnknownCompressorError


def test_raw_id_reserved(registry):
    raw = registry.get(RAW_ID)
    assert raw.name == RAW_NAME
    assert raw.compressor_id == RAW_ID
    assert raw.decompress(raw.compress(b"abc")) == b"abc"


def test_ids_are_dense_and_stable(registry):
    ids = sorted(c.compressor_id for c in registry)
    assert ids == list(range(1, len(registry) + 1))
    # Rebuilding produces identical name→id mapping (partition
    # portability depends on this).
    rebuilt = build_default_registry()
    for comp in registry:
        assert rebuilt.get(comp.name).compressor_id == comp.compressor_id


def test_lookup_by_id_and_name_agree(registry):
    for comp in registry:
        assert registry.get(comp.compressor_id) is comp
        assert registry.get(comp.name) is comp


def test_paper_aliases_resolve(registry):
    for alias, target in PAPER_ALIASES.items():
        assert registry.get(alias).name == target


def test_unknown_names_raise(registry):
    with pytest.raises(UnknownCompressorError):
        registry.get("snappy")
    with pytest.raises(UnknownCompressorError):
        registry.get(99_999)


def test_contains(registry):
    assert "zlib-6" in registry
    assert "lz4hc" in registry  # via alias
    assert 1 in registry
    assert "nope" not in registry


def test_duplicate_registration_rejected():
    reg = CompressorRegistry()
    reg.register(NullCodec())
    with pytest.raises(ValueError):
        reg.register(NullCodec())


def test_custom_registration_names_and_ids():
    reg = CompressorRegistry()
    a = reg.register(Lz77Codec(3))
    b = reg.register(Lz77Codec(6), name="custom-name")
    assert a.name == "fastlz-3"
    assert b.name == "custom-name"
    assert b.compressor_id == a.compressor_id + 1


def test_module_level_helpers():
    names = list_compressors()
    assert len(names) == 180
    assert get_compressor("zlib-6").name == "zlib-6"
    assert get_compressor("lzsse8").name == "fastlz-6"


def test_names_exclude_raw(registry):
    assert RAW_NAME not in registry.names()


def test_iteration_order_is_id_order(registry):
    ids = [c.compressor_id for c in registry]
    assert ids == sorted(ids)
