"""Figure 9 — weak-scaling to 512 nodes, FanStore vs ideal vs Lustre.

Regenerates all three panels through the discrete-event model:

- 9(a) SRGAN on GTX with lzsse8: paper 97.9 % at 16 nodes;
- 9(b) ResNet-50 on GTX: paper 90.4 % at 16 nodes, Lustre far below;
- 9(c) ResNet-50 on CPU to 512 nodes: paper 92.2 %, plus the Lustre
  run that "ran for one hour without starting training".
"""

from __future__ import annotations

import pytest

from repro.bench.report import PaperComparison
from repro.cluster.machines import cpu, gtx
from repro.compressors.profiles import get_profile
from repro.training.apps import resnet50, srgan
from repro.training.simulate import SimJob, simulate_run, weak_scaling_sweep

ITERATIONS = 6


def test_fig9a_srgan_gtx(benchmark, emit_report):
    machine = gtx()
    app = srgan()

    reports = benchmark.pedantic(
        lambda: weak_scaling_sweep(
            machine, app, [1, 2, 4, 8, 16],
            compressor=get_profile("lzsse8"), iterations=ITERATIONS,
        ),
        rounds=1, iterations=1,
    )
    base = reports[1]
    report = PaperComparison(
        "Figure 9(a)", "SRGAN weak scaling on GTX (lzsse8 via FanStore)",
        columns=["nodes", "GPUs", "iter s", "efficiency"],
    )
    for n in (1, 2, 4, 8, 16):
        r = reports[n]
        report.add_row(
            n, n * 4, f"{r.mean_iteration_seconds:.3f}",
            f"{r.weak_scaling_efficiency(base):.1%}",
        )
    report.add_note("paper: 97.9% at 64 GPUs (16 nodes)")
    emit_report(report)
    assert reports[16].weak_scaling_efficiency(base) > 0.95


def test_fig9b_resnet_gtx(benchmark, emit_report):
    machine = gtx()
    app = resnet50()

    def sweep():
        fan = weak_scaling_sweep(machine, app, [1, 4, 16],
                                 iterations=ITERATIONS)
        lus = {
            n: simulate_run(
                SimJob(machine=machine, app=app, nodes=n, io_path="lustre",
                       iterations=3, dataset_files=500 * n)
            )
            for n in (1, 4, 16)
        }
        return fan, lus

    fan, lus = benchmark.pedantic(sweep, rounds=1, iterations=1)
    base = fan[1]
    report = PaperComparison(
        "Figure 9(b)", "ResNet-50 weak scaling on GTX: FanStore vs Lustre",
        columns=["nodes", "fanstore eff", "lustre eff"],
    )
    for n in (1, 4, 16):
        report.add_row(
            n,
            f"{fan[n].weak_scaling_efficiency(base):.1%}",
            f"{base.mean_iteration_seconds / lus[n].mean_iteration_seconds:.1%}",
        )
    report.add_note("paper: FanStore 90.4% at 64 GPUs; Lustre hosts the "
                    "dataset at materially lower rates")
    emit_report(report)

    eff16 = fan[16].weak_scaling_efficiency(base)
    assert 0.85 < eff16 < 0.98
    # Lustre must trail FanStore increasingly with scale.
    assert (
        lus[16].mean_iteration_seconds > fan[16].mean_iteration_seconds
    )


def test_fig9c_resnet_cpu_512(benchmark, emit_report):
    machine = cpu()
    app = resnet50()

    reports = benchmark.pedantic(
        lambda: weak_scaling_sweep(
            machine, app, [1, 64, 256, 512], iterations=4
        ),
        rounds=1, iterations=1,
    )
    base = reports[1]

    lustre_512 = simulate_run(
        SimJob(machine=machine, app=app, nodes=512, io_path="lustre",
               iterations=1, dataset_files=512_000)
    )

    report = PaperComparison(
        "Figure 9(c)", "ResNet-50 weak scaling on CPU to 512 nodes",
        columns=["nodes", "iter s", "efficiency", "startup"],
    )
    for n in (1, 64, 256, 512):
        r = reports[n]
        report.add_row(
            n, f"{r.mean_iteration_seconds:.3f}",
            f"{r.weak_scaling_efficiency(base):.1%}",
            f"{r.startup_seconds:.0f} s",
        )
    report.add_row(
        "512 (Lustre)", "-", "-",
        f"{lustre_512.startup_seconds / 3600:.1f} h",
    )
    report.add_note("paper: 92.2% at 512 nodes; the Lustre run never "
                    "started within an hour (metadata storm)")
    emit_report(report)

    assert reports[512].weak_scaling_efficiency(base) > 0.90
    assert lustre_512.startup_seconds > 3600
    assert reports[512].startup_seconds < 600