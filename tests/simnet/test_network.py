"""Interconnect models: postal model, collective cost shapes."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.simnet.network import InterconnectModel, fdr_infiniband, omni_path
from repro.util.units import MB


class TestP2P:
    def test_postal_model(self):
        net = fdr_infiniband()
        small = net.p2p_time(0)
        assert small == pytest.approx(net.latency)
        big = net.p2p_time(68 * MB)
        assert big == pytest.approx(net.latency + 68 * MB / net.bandwidth)

    def test_negative_size_rejected(self):
        with pytest.raises(SimulationError):
            fdr_infiniband().p2p_time(-1)

    def test_invalid_parameters(self):
        with pytest.raises(SimulationError):
            InterconnectModel("bad", latency=-1, bandwidth=1)
        with pytest.raises(SimulationError):
            InterconnectModel("bad", latency=0, bandwidth=0)


class TestCollectives:
    def test_single_node_collectives_free(self):
        net = omni_path()
        assert net.allgather_time(1000, 1) == 0.0
        assert net.allreduce_time(1000, 1) == 0.0
        assert net.broadcast_time(1000, 1) == 0.0

    def test_allgather_linear_in_nodes(self):
        net = fdr_infiniband()
        t4 = net.allgather_time(1 * MB, 4)
        t8 = net.allgather_time(1 * MB, 8)
        assert t8 == pytest.approx(t4 * 7 / 3)

    def test_allreduce_bandwidth_term_saturates(self):
        """2·(N−1)/N → 2: doubling nodes barely changes the bandwidth
        term at scale (why allreduce weak-scales)."""
        net = omni_path()
        t64 = net.allreduce_time(100 * MB, 64)
        t512 = net.allreduce_time(100 * MB, 512)
        assert t512 < t64 * 1.1

    def test_allreduce_latency_grows_logarithmically(self):
        net = fdr_infiniband()
        t2 = net.allreduce_time(0, 2)
        t1024 = net.allreduce_time(0, 1024)
        assert t1024 == pytest.approx(10 * t2)

    def test_broadcast_log_steps(self):
        net = fdr_infiniband()
        assert net.broadcast_time(1 * MB, 8) == pytest.approx(
            3 * net.p2p_time(1 * MB)
        )

    def test_ring_shift_is_single_hop(self):
        net = fdr_infiniband()
        assert net.ring_shift_time(5 * MB) == pytest.approx(net.p2p_time(5 * MB))

    def test_node_count_validation(self):
        net = fdr_infiniband()
        for fn in (net.allgather_time, net.allreduce_time, net.broadcast_time):
            with pytest.raises(SimulationError):
                fn(100, 0)


class TestFabricPresets:
    def test_opa_faster_than_fdr(self):
        assert omni_path().bandwidth > fdr_infiniband().bandwidth

    def test_sub_microsecond_latency(self):
        assert fdr_infiniband().latency < 1e-6
        assert omni_path().latency < 1e-6

    def test_injection_ceiling_used_by_allreduce(self):
        net = InterconnectModel(
            "capped", latency=1e-6, bandwidth=100 * MB,
            injection_bandwidth=10 * MB,
        )
        t = net.allreduce_time(10 * MB, 4)
        # bandwidth term must use the 10 MB/s injection ceiling
        assert t > 1.0
