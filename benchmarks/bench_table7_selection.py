"""Table VII — the compressor-selection outcomes for the three cases.

Regenerates every (compressor, decompression cost, ratio) row the paper
tabulates, runs Equations 1–3, and asserts the paper's selections:
lzsse8 on SRGAN/GTX, brotli on FRNN/CPU, and the lz4hc fallback on
SRGAN/V100.
"""

from __future__ import annotations

import pytest

from repro.bench.report import PaperComparison
from repro.selection.cases import frnn_cpu, srgan_gtx, srgan_v100
from repro.selection.model import CompressorSelector
from repro.util.units import format_seconds

PAPER_SELECTIONS = {
    "srgan-gtx": "lzsse8",
    "frnn-cpu": "brotli",
    "srgan-v100": "lz4hc",
}


@pytest.fixture(
    scope="module", params=["srgan-gtx", "frnn-cpu", "srgan-v100"]
)
def case(request):
    return {
        "srgan-gtx": srgan_gtx,
        "frnn-cpu": frnn_cpu,
        "srgan-v100": srgan_v100,
    }[request.param]()


def test_table7_selection(benchmark, case, emit_report):
    selector = CompressorSelector(case.inputs)
    candidates = case.candidates()

    result = benchmark(lambda: selector.select(candidates))

    report = PaperComparison(
        f"Table VII ({case.name})",
        f"{case.app} on {case.cluster}, {case.inputs.io_mode} I/O",
        columns=["compressor", "d.cost", "ratio", "budget", "verdict"],
    )
    for v in result.verdicts:
        report.add_row(
            v.candidate.name,
            format_seconds(v.candidate.decompress_cost),
            round(v.candidate.ratio, 1),
            format_seconds(max(v.budget_per_file, 0.0)),
            "accept" if v.accepted else "reject",
        )
    pick = result.choice.name if result.choice else "(none)"
    kind = "strict" if result.selected else "fallback"
    report.add_note(f"{kind} selection: {pick}; paper: "
                    f"{PAPER_SELECTIONS[case.name]}")
    emit_report(report)

    assert result.choice is not None
    assert result.choice.name == PAPER_SELECTIONS[case.name]

    if case.name == "srgan-gtx":
        # §VII-E1's intermediate value
        assert selector.read_time_uncompressed() == pytest.approx(
            81_063e-6, rel=0.01
        )
        assert result.selected is not None  # strict win
    if case.name == "frnn-cpu":
        assert all(v.meets_performance for v in result.verdicts)
    if case.name == "srgan-v100":
        assert result.selected is None  # nothing meets the 125 µs budget
        assert selector.budget_per_file(2.1) == pytest.approx(
            125e-6, rel=0.06
        )