"""Synthetic datasets matching the paper's Table II statistics."""

from repro.datasets.spec import TABLE2, DatasetSpec, get_spec
from repro.datasets.synthetic import (
    GENERATORS,
    astro_fits,
    em_tif,
    generate_dataset,
    imagenet_jpg,
    language_txt,
    list_datasets,
    lung_nii,
    sample_files,
    tokamak_npz,
)

__all__ = [
    "DatasetSpec",
    "TABLE2",
    "get_spec",
    "GENERATORS",
    "generate_dataset",
    "sample_files",
    "list_datasets",
    "em_tif",
    "tokamak_npz",
    "lung_nii",
    "astro_fits",
    "imagenet_jpg",
    "language_txt",
]
