#!/usr/bin/env python3
"""Lossy compression for training data — the paper's §VIII future work.

Explores the SZ/ZFP-family codecs on the scientific datasets: how much
further than lossless can capacity go, at what certified error — and
what that would mean for the Figure 1 placement analysis.

Run: ``python examples/lossy_exploration.py``
"""

from __future__ import annotations

import io

import numpy as np

from repro.cluster import analyze_placement, gtx
from repro.compressors import SzLikeCodec, ZfpLikeCodec, max_abs_error, psnr
from repro.compressors.registry import get_compressor
from repro.datasets import sample_files
from repro.util import GB


def tokamak_signals() -> np.ndarray:
    blobs = sample_files("tokamak", 12, seed=41)
    arrays = [
        np.load(io.BytesIO(b))["signals"].astype(np.float64) for b in blobs
    ]
    return np.concatenate([a.reshape(-1) for a in arrays])


def main() -> None:
    data = tokamak_signals()
    peak = float(np.max(np.abs(data)))
    print(f"tokamak diagnostic stream: {data.size} samples, "
          f"peak |x| = {peak:.0f}")

    lossless = get_compressor("zlib-6")
    lossless_ratio = data.nbytes / len(lossless.compress(data.tobytes()))
    print(f"\nlossless ceiling (zlib-6): {lossless_ratio:.1f}x")

    print(f"\n{'codec':<26} {'ratio':>7} {'L∞ err':>10} {'PSNR':>8}")
    best_for_figure1 = lossless_ratio
    for rel in (1e-5, 1e-4, 1e-3, 1e-2):
        codec = SzLikeCodec(rel * peak)
        blob = codec.compress(data)
        out = codec.decompress(blob)
        ratio = data.nbytes / len(blob)
        err = max_abs_error(data, out)
        print(f"{codec.name:<26} {ratio:>7.1f} {err:>10.2e} "
              f"{psnr(data, out):>7.1f}dB   (bound certified)")
        if rel <= 1e-3:
            best_for_figure1 = max(best_for_figure1, ratio)
    for bits in (16, 12, 8):
        codec = ZfpLikeCodec(bits)
        blob = codec.compress(data)
        out = codec.decompress(blob)
        print(f"{codec.name:<26} {data.nbytes / len(blob):>7.1f} "
              f"{max_abs_error(data, out):>10.2e} "
              f"{psnr(data, out):>7.1f}dB   (fixed rate)")

    print("\n== what that buys in Figure 1 terms ==")
    machine = gtx()
    for ratio, label in (
        (1.0, "raw"),
        (3.6, "lossless (paper lzma)"),
        (best_for_figure1, "lossy @ 1e-3 rel bound"),
    ):
        a = analyze_placement(
            machine, 1_700 * GB,  # the paper's 1.7 TB tokamak dataset
            max_batch=512, min_per_processor_batch=64,
            compression_ratio=min(ratio, 100.0),
        )
        print(f"   {label:<24}: >= {a.min_nodes_capacity:>3} nodes to "
              f"host 1.7 TB; utilization {a.utilization:.0%}")

    print("\ncaveat (the paper's, §II-C): lossy training impact is "
          "task-dependent;\nthe error bound is certified, the accuracy "
          "impact must be validated per model.")


if __name__ == "__main__":
    main()
