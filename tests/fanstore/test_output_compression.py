"""The compressed write path (output_compressor config)."""

from __future__ import annotations

import pytest

from repro.comm.launcher import run_parallel
from repro.fanstore.daemon import DaemonConfig
from repro.fanstore.store import FanStore


@pytest.fixture()
def compressing_store(prepared_dataset):
    config = DaemonConfig(output_compressor="zlib-6")
    with FanStore(prepared_dataset, config=config) as fs:
        yield fs


class TestCompressedOutputs:
    def test_roundtrip_through_compression(self, compressing_store):
        client = compressing_store.client
        payload = b"checkpoint state " * 500
        client.write_file("ckpt/model.bin", payload)
        assert client.read_file("ckpt/model.bin") == payload

    def test_backend_holds_compressed_bytes(self, compressing_store):
        client = compressing_store.client
        payload = b"repetitive " * 1000
        client.write_file("out/r.bin", payload)
        stored = compressing_store.daemon.backend.get("out/r.bin")
        assert len(stored) < len(payload) // 3
        rec = compressing_store.daemon.metadata.get("out/r.bin")
        assert rec.compressor_id != 0
        assert rec.compressed_size == len(stored)
        assert rec.stat.st_size == len(payload)  # logical size unchanged

    def test_stat_reports_original_size(self, compressing_store):
        client = compressing_store.client
        client.write_file("out/s.bin", b"x" * 4096)
        assert client.stat("out/s.bin").st_size == 4096

    def test_incompressible_output_stays_raw(self, compressing_store):
        import os

        client = compressing_store.client
        noise = os.urandom(2048)
        client.write_file("out/noise.bin", noise)
        rec = compressing_store.daemon.metadata.get("out/noise.bin")
        assert rec.compressor_id == 0
        assert compressing_store.daemon.backend.get("out/noise.bin") == noise

    def test_default_config_stores_raw(self, single_store):
        payload = b"repetitive " * 200
        single_store.client.write_file("out/raw.bin", payload)
        assert single_store.daemon.backend.get("out/raw.bin") == payload

    def test_multinode_remote_read_of_compressed_output(
        self, prepared_dataset
    ):
        config = DaemonConfig(output_compressor="zlib-6")

        def body(comm):
            with FanStore(prepared_dataset, comm=comm, config=config) as fs:
                payload = f"rank {comm.rank} ".encode() * 300
                fs.client.write_file(f"out/r{comm.rank}.bin", payload)
                comm.barrier()
                # read the neighbor's compressed output remotely
                other = (comm.rank + 1) % comm.size
                data = fs.client.read_file(f"out/r{other}.bin")
                return data == f"rank {other} ".encode() * 300

        assert all(run_parallel(body, 3, timeout=60))
