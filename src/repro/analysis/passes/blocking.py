"""*blocking-under-lock*: nothing slow or fallible may run while a
fanstore lock is held.

The daemon service thread and the client hot path take small in-memory
locks (cache map, route table, reply mutex); holding one across a
communicator round-trip, a ``time.sleep`` backoff, file I/O, or a
decompression call turns a microsecond critical section into a
millisecond one and — for comm calls — can deadlock against the peer
trying to acquire the same lock. The pass walks every held-lock region
(interprocedurally, via :mod:`repro.analysis.locks`) inside
``repro/fanstore`` and flags the calls below.

Condition-protocol calls (``wait``/``notify``) are exempt: ``wait``
releases the lock by contract.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.core import Finding, LintPass, Project
from repro.analysis.locks import CallEvent, LockModel

#: communicator round-trips (block until a peer acts)
BLOCKING_COMM = {
    "send",
    "recv",
    "sendrecv",
    "allgather",
    "allreduce",
    "gather",
    "scatter",
    "broadcast",
    "barrier",
}
#: explicitly non-blocking / lock-protocol attribute calls
EXEMPT_ATTRS = {
    "try_recv",
    "irecv",
    "isend",
    "wait",
    "wait_for",
    "notify",
    "notify_all",
    "acquire",
    "release",
}
#: filesystem touches
FILE_IO_ATTRS = {
    "read_bytes",
    "read_text",
    "write_bytes",
    "write_text",
    "fsync",
    "replace",
    "rename",
}
#: (de)compression entry points
CODEC_ATTRS = {"compress", "decompress"}


def _describe(call: ast.Call) -> str | None:
    """Classify one call; None means not a blocking operation."""
    fn = call.func
    if isinstance(fn, ast.Name):
        if fn.id == "open":
            return "file I/O (open)"
        return None
    if not isinstance(fn, ast.Attribute):
        return None
    attr = fn.attr
    if attr in EXEMPT_ATTRS:
        return None
    base = fn.value.id if isinstance(fn.value, ast.Name) else None
    if base == "time" and attr == "sleep":
        return "time.sleep"
    if base == "os" and attr in ("open", "fsync", "replace", "rename", "remove"):
        return f"file I/O (os.{attr})"
    if attr in FILE_IO_ATTRS:
        return f"file I/O (.{attr})"
    if attr in CODEC_ATTRS:
        return f"(de)compression (.{attr})"
    if attr in BLOCKING_COMM:
        return f"communicator round-trip (.{attr})"
    return None


class BlockingUnderLockPass(LintPass):
    rule = "blocking-under-lock"
    title = "no comm/sleep/I-O/codec calls inside held-lock regions"

    def run(self, project: Project) -> Iterable[Finding]:
        model = LockModel(project)
        seen: set[tuple[str, int, str]] = set()
        findings: list[Finding] = []

        def on_call(ev: CallEvent) -> None:
            what = _describe(ev.call)
            if what is None:
                return
            held = ", ".join(lock.key for lock in ev.held)
            key = (ev.source.display, ev.call.lineno, what)
            if key in seen:
                return
            seen.add(key)
            findings.append(
                Finding(
                    rule=self.rule,
                    path=ev.source.display,
                    line=ev.call.lineno,
                    message=(
                        f"{what} while holding {held} "
                        f"(reached via {ev.entry})"
                    ),
                )
            )

        model.walk_all(
            on_call=on_call,
            class_filter=lambda cm: "fanstore/" in cm.source.display.replace(
                "\\", "/"
            ),
        )
        return findings
