"""Per-rank metrics: counters, gauges, fixed-bucket latency histograms.

Design constraints, in order:

1. **Hot-path cost.** A cached FanStore read is ~20 µs end to end, so
   the instrumentation the daemon leaves permanently on (counter
   arithmetic) must cost nothing beyond what the pre-existing
   ``DaemonStats`` bag already paid. The registry therefore supports
   *bound* metrics: the value lives as a plain attribute on the stats
   object (``stats.retries += 1`` stays a bare int add under the GIL)
   and the registry merely knows how to read — and write — it. Plain
   :class:`Counter`/:class:`Gauge`/:class:`Histogram` objects exist for
   the paths that are not microsecond-hot (write path, scrubber,
   trainer, sampled read phases).
2. **Lock discipline.** The registry lock guards only metric
   *creation*; updates are bare ``+=`` on ints/floats, the same
   GIL-atomicity contract the existing stats dataclasses rely on.
   Snapshots may therefore be a few updates stale — fine for metrics.
3. **Mergeability.** Snapshots from different ranks merge into one
   cluster view: counters sum, gauges keep the max, histograms with
   identical bucket edges add bucket-wise. That is what ``fanstore-top``
   renders and what the CI observability job asserts on.

Wire format: one JSON object per line (JSONL), flat::

    {"rank": 0, "label": "bench", "name": "daemon.local_opens",
     "type": "counter", "value": 24}

Histogram lines additionally carry ``edges``/``buckets``/``count``/
``sum``/``min``/``max``. The catalogue of metric names lives in
``docs/observability.md`` and is linted by ``tests/obs``.
"""

from __future__ import annotations

import json
import math
import threading
import weakref
from bisect import bisect_left
from pathlib import Path
from typing import Any, Callable, Iterable, Mapping

from repro.errors import ReproError


class ObservabilityError(ReproError):
    """Misuse of the metrics/tracing API (name clashes, bad merges)."""


#: default latency bucket edges: a 1-2-5 ladder from 1 µs to 100 s.
#: The upper edge of each bucket is its label (``le`` semantics); one
#: implicit overflow bucket catches everything past the last edge.
DEFAULT_LATENCY_EDGES: tuple[float, ...] = tuple(
    m * (10.0 ** d) for d in range(-6, 2) for m in (1.0, 2.0, 5.0)
) + (100.0,)


class Counter:
    """A monotonically increasing value. ``inc()`` is unlocked by
    design — int ``+=`` is GIL-atomic enough for metrics."""

    kind = "counter"
    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        self.value += amount

    def to_dict(self) -> dict:
        return {"name": self.name, "type": self.kind, "value": self.value}


class BoundCounter:
    """A counter whose storage is an attribute of another object.

    This is how the legacy stats dataclasses (``DaemonStats``,
    ``CacheStats``, ``MembershipStats``) fold into the registry without
    touching their hot ``+=`` sites: the dataclass field *is* the
    counter cell; the registry reads (and can write) through it.
    """

    kind = "counter"
    __slots__ = ("name", "_obj", "_attr")

    def __init__(self, name: str, obj: Any, attr: str) -> None:
        if not hasattr(obj, attr):
            raise ObservabilityError(
                f"{name}: {type(obj).__name__} has no attribute {attr!r}"
            )
        self.name = name
        self._obj = obj
        self._attr = attr

    @property
    def value(self) -> int | float:
        return getattr(self._obj, self._attr)

    def inc(self, amount: int | float = 1) -> None:
        setattr(self._obj, self._attr, getattr(self._obj, self._attr) + amount)

    def to_dict(self) -> dict:
        return {"name": self.name, "type": self.kind, "value": self.value}


class Gauge:
    """A point-in-time value (resident bytes, view epoch, ...)."""

    kind = "gauge"
    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: int | float = 0

    def set(self, value: int | float) -> None:
        self.value = value

    def to_dict(self) -> dict:
        return {"name": self.name, "type": self.kind, "value": self.value}


class BoundGauge:
    """A gauge read from an attribute (or property) of another object,
    or from a zero-argument callable — evaluated at snapshot time, so
    the instrumented object never has to push updates."""

    kind = "gauge"
    __slots__ = ("name", "_obj", "_attr", "_fn")

    def __init__(
        self,
        name: str,
        obj: Any = None,
        attr: str | None = None,
        fn: Callable[[], float] | None = None,
    ) -> None:
        if (fn is None) == (obj is None):
            raise ObservabilityError(f"{name}: bind either obj/attr or fn")
        self.name = name
        self._obj = obj
        self._attr = attr
        self._fn = fn

    @property
    def value(self) -> int | float:
        if self._fn is not None:
            return self._fn()
        return getattr(self._obj, self._attr)  # type: ignore[arg-type]

    def to_dict(self) -> dict:
        return {"name": self.name, "type": self.kind, "value": self.value}


class Histogram:
    """Fixed-bucket latency histogram with ``le`` (≤ upper edge)
    semantics plus an implicit overflow bucket.

    ``observe()`` is deliberately bare — one bisect over ~25 floats,
    five unlocked updates — because the daemon calls it on sampled hot
    reads. Concurrent observers can therefore lose an update under
    pathological interleaving; metrics-grade accuracy, same contract as
    every other counter in this repo.
    """

    kind = "histogram"
    __slots__ = ("name", "edges", "buckets", "count", "sum", "min", "max")

    def __init__(
        self, name: str, edges: Iterable[float] = DEFAULT_LATENCY_EDGES
    ) -> None:
        self.name = name
        self.edges: tuple[float, ...] = tuple(float(e) for e in edges)
        if not self.edges or list(self.edges) != sorted(set(self.edges)):
            raise ObservabilityError(
                f"{name}: edges must be non-empty, sorted, unique"
            )
        self.buckets = [0] * (len(self.edges) + 1)  # +1 = overflow
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        self.buckets[bisect_left(self.edges, value)] += 1
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Bucket-resolution quantile: the upper edge of the bucket
        holding the ``q``-th observation (the recorded max for the
        overflow bucket). 0 when empty."""
        if not 0.0 <= q <= 1.0:
            raise ObservabilityError(f"quantile {q} outside [0, 1]")
        if self.count == 0:
            return 0.0
        target = max(1, math.ceil(q * self.count))
        seen = 0
        for i, n in enumerate(self.buckets):
            seen += n
            if seen >= target:
                return self.edges[i] if i < len(self.edges) else self.max
        return self.max

    def merge(self, other: "Histogram") -> None:
        if other.edges != self.edges:
            raise ObservabilityError(
                f"{self.name}: cannot merge histograms with different edges"
            )
        for i, n in enumerate(other.buckets):
            self.buckets[i] += n
        self.count += other.count
        self.sum += other.sum
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "type": self.kind,
            "edges": list(self.edges),
            "buckets": list(self.buckets),
            "count": self.count,
            "sum": self.sum,
            "min": None if self.count == 0 else self.min,
            "max": None if self.count == 0 else self.max,
        }


Metric = Counter | BoundCounter | Gauge | BoundGauge | Histogram

#: every registry constructed in this process, for the benchmark
#: conftest: ``emit_report`` snapshots whatever is live without the
#: individual benchmarks having to thread registries around.
_LIVE: "weakref.WeakSet[MetricsRegistry]" = weakref.WeakSet()


def live_registries() -> list["MetricsRegistry"]:
    """Registries still alive in this process (creation order not
    guaranteed). Benchmarks use this to snapshot everything a test
    touched without plumbing."""
    return list(_LIVE)


class MetricsRegistry:
    """One rank's named metrics. Creation is locked; updates are not.

    ``counter``/``gauge``/``histogram`` are get-or-create: the first
    call fixes the metric's type (and, for histograms, edges), and a
    later call with a clashing type raises. ``bind_*`` register
    metrics whose storage lives on an existing stats object — the
    zero-overhead path for the legacy dataclasses.
    """

    def __init__(self, rank: int = 0, label: str | None = None) -> None:
        self.rank = rank
        self.label = label
        self._lock = threading.Lock()
        self._metrics: dict[str, Metric] = {}
        _LIVE.add(self)

    # -- creation ---------------------------------------------------------

    def _register(self, metric: Metric) -> Metric:
        with self._lock:
            existing = self._metrics.get(metric.name)
            if existing is not None:
                if existing.kind != metric.kind:
                    raise ObservabilityError(
                        f"{metric.name}: registered as {existing.kind}, "
                        f"requested as {metric.kind}"
                    )
                return existing
            self._metrics[metric.name] = metric
            return metric

    def counter(self, name: str) -> Counter:
        """Get-or-create a plain counter."""
        metric = self._metrics.get(name)  # unlocked fast path
        if type(metric) is Counter:
            return metric
        return self._register(Counter(name))  # type: ignore[return-value]

    def gauge(self, name: str) -> Gauge:
        """Get-or-create a plain gauge."""
        metric = self._metrics.get(name)
        if type(metric) is Gauge:
            return metric
        return self._register(Gauge(name))  # type: ignore[return-value]

    def histogram(
        self, name: str, edges: Iterable[float] = DEFAULT_LATENCY_EDGES
    ) -> Histogram:
        """Get-or-create a fixed-bucket histogram (first caller's edges
        win; merging across ranks requires identical edges)."""
        metric = self._metrics.get(name)
        if type(metric) is Histogram:
            return metric
        return self._register(Histogram(name, edges))  # type: ignore[return-value]

    def bind_counter(self, name: str, obj: Any, attr: str) -> BoundCounter:
        """Register a counter backed by ``obj.attr`` (see module doc)."""
        return self._register(BoundCounter(name, obj, attr))  # type: ignore[return-value]

    def bind_gauge(
        self,
        name: str,
        obj: Any = None,
        attr: str | None = None,
        fn: Callable[[], float] | None = None,
    ) -> BoundGauge:
        """Register a gauge read from ``obj.attr`` or ``fn()`` at
        snapshot time."""
        return self._register(BoundGauge(name, obj, attr, fn))  # type: ignore[return-value]

    # -- access -----------------------------------------------------------

    def get(self, name: str) -> Metric:
        """The registered metric, or :class:`KeyError`."""
        return self._metrics[name]

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def snapshot(self) -> "MetricsSnapshot":
        """A point-in-time, JSON-ready copy of every metric."""
        with self._lock:
            metrics = [m.to_dict() for m in self._metrics.values()]
        return MetricsSnapshot(rank=self.rank, label=self.label, metrics=metrics)


class MetricsSnapshot:
    """A serialized registry state: exportable, loadable, mergeable.

    ``metrics`` is a list of flat dicts (see module doc for the wire
    format). ``rank`` is -1 for a merged, cluster-wide snapshot.
    """

    def __init__(
        self, rank: int = 0, label: str | None = None,
        metrics: list[dict] | None = None,
    ) -> None:
        self.rank = rank
        self.label = label
        self.metrics = metrics or []

    # -- access -----------------------------------------------------------

    def get(self, name: str) -> dict:
        """The metric dict named ``name``, or :class:`KeyError`."""
        for m in self.metrics:
            if m.get("name") == name:
                return m
        raise KeyError(name)

    def names(self) -> list[str]:
        return sorted(m["name"] for m in self.metrics if "name" in m)

    def value(self, name: str) -> Any:
        """Counter/gauge value (histograms: the observation count)."""
        m = self.get(name)
        return m["count"] if m.get("type") == "histogram" else m.get("value")

    def __len__(self) -> int:
        return len(self.metrics)

    # -- JSONL ------------------------------------------------------------

    def to_lines(self) -> list[str]:
        return [
            json.dumps({"rank": self.rank, "label": self.label, **m},
                       sort_keys=True)
            for m in self.metrics
        ]

    def write_jsonl(self, path: Path | str, *, append: bool = False) -> Path:
        """Write one JSON object per metric; returns the path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        mode = "a" if append else "w"
        with open(path, mode, encoding="utf-8") as fh:
            for line in self.to_lines():
                fh.write(line + "\n")
        return path

    # -- human table -------------------------------------------------------

    def render(self, *, prefix: str = "") -> str:
        """A fixed-width table (what ``fanstore-top`` prints)."""
        rows = [("metric", "type", "value")]
        for m in sorted(self.metrics, key=lambda d: d.get("name", "")):
            name = m.get("name", "?")
            if prefix and not name.startswith(prefix):
                continue
            if m.get("type") == "histogram":
                value = _format_histogram(m)
            else:
                value = _format_number(m.get("value", 0))
            rows.append((name, m.get("type", "?"), value))
        widths = [max(len(r[i]) for r in rows) for i in range(3)]
        lines = ["  ".join(c.ljust(w) for c, w in zip(r, widths)).rstrip()
                 for r in rows]
        lines.insert(1, "  ".join("-" * w for w in widths))
        return "\n".join(lines)


def _format_number(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def _format_seconds(value: float) -> str:
    if value < 1e-3:
        return f"{value * 1e6:.0f}us"
    if value < 1.0:
        return f"{value * 1e3:.1f}ms"
    return f"{value:.2f}s"


def _format_histogram(m: Mapping[str, Any]) -> str:
    count = m.get("count", 0)
    if not count:
        return "count=0"
    h = Histogram(m["name"], m["edges"])
    h.buckets = list(m["buckets"])
    h.count = count
    h.sum = m.get("sum", 0.0)
    h.min = m.get("min") or 0.0
    h.max = m.get("max") or 0.0
    return (
        f"count={count} mean={_format_seconds(h.mean)} "
        f"p50={_format_seconds(h.quantile(0.5))} "
        f"p95={_format_seconds(h.quantile(0.95))} "
        f"max={_format_seconds(h.max)}"
    )


def load_snapshots(paths: Iterable[Path | str]) -> list[MetricsSnapshot]:
    """Load snapshots back from JSONL files (one snapshot per distinct
    ``(rank, label)`` pair found across all lines; non-metric lines —
    e.g. interleaved trace spans — are skipped)."""
    grouped: dict[tuple[int, str | None], list[dict]] = {}
    for path in paths:
        with open(path, "r", encoding="utf-8") as fh:
            for raw in fh:
                raw = raw.strip()
                if not raw:
                    continue
                try:
                    obj = json.loads(raw)
                except json.JSONDecodeError:
                    continue
                if not isinstance(obj, dict) or "name" not in obj:
                    continue
                if obj.get("type") not in ("counter", "gauge", "histogram"):
                    continue
                key = (int(obj.pop("rank", 0)), obj.pop("label", None))
                grouped.setdefault(key, []).append(obj)
    return [
        MetricsSnapshot(rank=rank, label=label, metrics=metrics)
        for (rank, label), metrics in sorted(
            grouped.items(), key=lambda kv: (kv[0][0], kv[0][1] or "")
        )
    ]


def merge_snapshots(snapshots: Iterable[MetricsSnapshot]) -> MetricsSnapshot:
    """Fold per-rank snapshots into one cluster-wide snapshot: counters
    sum, gauges keep the max, histograms merge bucket-wise (identical
    edges required). The result has ``rank == -1``."""
    counters: dict[str, float] = {}
    gauges: dict[str, float] = {}
    hists: dict[str, Histogram] = {}
    for snap in snapshots:
        for m in snap.metrics:
            name, kind = m.get("name"), m.get("type")
            if name is None:
                continue
            if kind == "counter":
                counters[name] = counters.get(name, 0) + m.get("value", 0)
            elif kind == "gauge":
                value = m.get("value", 0)
                gauges[name] = max(gauges.get(name, value), value)
            elif kind == "histogram":
                incoming = Histogram(name, m["edges"])
                incoming.buckets = list(m["buckets"])
                incoming.count = m.get("count", 0)
                incoming.sum = m.get("sum", 0.0)
                incoming.min = m.get("min") if m.get("min") is not None else math.inf
                incoming.max = m.get("max") if m.get("max") is not None else -math.inf
                if name in hists:
                    hists[name].merge(incoming)
                else:
                    hists[name] = incoming
    metrics: list[dict] = []
    for name, value in counters.items():
        metrics.append({"name": name, "type": "counter", "value": value})
    for name, value in gauges.items():
        metrics.append({"name": name, "type": "gauge", "value": value})
    for h in hists.values():
        metrics.append(h.to_dict())
    metrics.sort(key=lambda d: d["name"])
    return MetricsSnapshot(rank=-1, label="merged", metrics=metrics)
