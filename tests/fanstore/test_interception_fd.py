"""fd-level interception (the trampoline layer of §V-C): os.open /
os.read / os.pread / os.lseek / os.close / os.fstat."""

from __future__ import annotations

import os

import pytest

from repro.fanstore.interception import FD_BASE, intercept


@pytest.fixture()
def store(single_store):
    return single_store


def first_file(store):
    return f"cls0000/{store.client.listdir('cls0000')[0]}"


class TestFdLevelReads:
    def test_open_read_close(self, store):
        rel = first_file(store)
        expected = store.client.read_file(rel)
        with intercept(store):
            fd = os.open(f"/fanstore/{rel}", os.O_RDONLY)
            assert fd >= FD_BASE
            data = os.read(fd, len(expected) + 100)
            os.close(fd)
        assert data == expected

    def test_chunked_reads_advance(self, store):
        rel = first_file(store)
        expected = store.client.read_file(rel)
        with intercept(store):
            fd = os.open(f"/fanstore/{rel}", os.O_RDONLY)
            a = os.read(fd, 10)
            b = os.read(fd, 10)
            os.close(fd)
        assert a + b == expected[:20]

    def test_lseek_and_pread(self, store):
        rel = first_file(store)
        expected = store.client.read_file(rel)
        with intercept(store):
            fd = os.open(f"/fanstore/{rel}", os.O_RDONLY)
            os.lseek(fd, 5, os.SEEK_SET)
            seeked = os.read(fd, 5)
            positional = os.pread(fd, 4, 0)
            os.close(fd)
        assert seeked == expected[5:10]
        assert positional == expected[:4]

    def test_fstat(self, store):
        rel = first_file(store)
        with intercept(store):
            fd = os.open(f"/fanstore/{rel}", os.O_RDONLY)
            st = os.fstat(fd)
            os.close(fd)
        assert st.st_size == store.client.stat(rel).st_size

    def test_write_through_fd_api(self, store):
        with intercept(store):
            fd = os.open("/fanstore/out/fd.bin", os.O_WRONLY | os.O_CREAT)
            # os.write is not patched; use the client via the fd mapping
            store.client.write(fd - FD_BASE, b"fd-level bytes")
            os.close(fd)
        assert store.client.read_file("out/fd.bin") == b"fd-level bytes"

    def test_missing_file_raises(self, store):
        with intercept(store):
            with pytest.raises(FileNotFoundError):
                os.open("/fanstore/ghost", os.O_RDONLY)


class TestPassthrough:
    def test_real_fds_unaffected(self, store, tmp_path):
        real = tmp_path / "real.bin"
        real.write_bytes(b"kernel bytes")
        with intercept(store):
            fd = os.open(real, os.O_RDONLY)
            assert fd < FD_BASE
            data = os.read(fd, 100)
            st = os.fstat(fd)
            os.close(fd)
        assert data == b"kernel bytes"
        assert st.st_size == 12

    def test_originals_restored(self, store):
        originals = (os.open, os.read, os.pread, os.lseek, os.close, os.fstat)
        with intercept(store):
            assert os.open is not originals[0]
        assert (os.open, os.read, os.pread, os.lseek, os.close,
                os.fstat) == originals

    def test_numpy_can_load_from_mount(self, store):
        """A real third-party library (numpy) reading an intercepted
        path end-to-end — the paper's 'no intrusive code changes'."""
        import io

        import numpy as np

        arr = np.arange(20, dtype=np.int32)
        buf = io.BytesIO()
        np.save(buf, arr)
        store.client.write_file("arrays/a.npy", buf.getvalue())
        with intercept(store):
            loaded = np.load("/fanstore/arrays/a.npy")
        np.testing.assert_array_equal(loaded, arr)


class TestOsWrite:
    def test_full_fd_write_path(self, store):
        with intercept(store):
            fd = os.open("/fanstore/out/oswrite.bin", os.O_WRONLY | os.O_CREAT)
            n = os.write(fd, b"via os.write")
            os.close(fd)
        assert n == 12
        assert store.client.read_file("out/oswrite.bin") == b"via os.write"

    def test_real_fd_write_passthrough(self, store, tmp_path):
        real = tmp_path / "w.bin"
        with intercept(store):
            fd = os.open(real, os.O_WRONLY | os.O_CREAT)
            os.write(fd, b"kernel write")
            os.close(fd)
        assert real.read_bytes() == b"kernel write"
