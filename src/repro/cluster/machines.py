"""The paper's three test platforms (§VII-A) as machine presets."""

from __future__ import annotations

from repro.cluster.node import MachineSpec, NodeSpec
from repro.simnet.devices import ram_disk_power9, ssd
from repro.simnet.network import fdr_infiniband, omni_path
from repro.util.units import GB


def gtx() -> MachineSpec:
    """**GTX**: 16 nodes × 4 × GTX 1080 Ti, ~60 GB local SSD, FDR IB."""
    return MachineSpec(
        name="GTX",
        nodes=16,
        node=NodeSpec(
            name="gtx-node",
            processors=4,
            processor_name="GTX 1080 Ti",
            burst_buffer_bytes=60 * GB,
            storage=ssd(),
            arch="skx",
        ),
        interconnect=fdr_infiniband(),
    )


def v100() -> MachineSpec:
    """**V100**: 4 nodes × 4 × V100 on POWER9, ~256 GB RAM disk, FDR IB."""
    return MachineSpec(
        name="V100",
        nodes=4,
        node=NodeSpec(
            name="v100-node",
            processors=4,
            processor_name="V100",
            burst_buffer_bytes=256 * GB,
            storage=ram_disk_power9(),
            arch="power9",
        ),
        interconnect=fdr_infiniband(),
    )


def cpu() -> MachineSpec:
    """**CPU**: 512 nodes × 2 × Xeon Platinum 8160, ~144 GB SSD, OPA."""
    return MachineSpec(
        name="CPU",
        nodes=512,
        node=NodeSpec(
            name="cpu-node",
            processors=2,
            processor_name="Xeon Platinum 8160",
            burst_buffer_bytes=144 * GB,
            storage=ssd(),
            arch="skx",
        ),
        interconnect=omni_path(),
    )


MACHINES = {"GTX": gtx, "V100": v100, "CPU": cpu}


def get_machine(name: str) -> MachineSpec:
    """Look up a preset by its paper name (case-insensitive)."""
    try:
        return MACHINES[name.upper()]()
    except KeyError:
        raise KeyError(
            f"unknown machine {name!r}; choose from {sorted(MACHINES)}"
        ) from None
