"""The store ("memcpy") codec — the paper's decompression-cost baseline.

Figure 7 plots every compressor against a *memcpy* reference; this codec
is that reference: ratio exactly 1.0, decompression cost one buffer copy.
"""

from __future__ import annotations

from repro.compressors.base import Codec


class NullCodec(Codec):
    """Identity coder; compress and decompress both copy the buffer."""

    name = "memcpy"

    def compress(self, data: bytes) -> bytes:
        return bytes(data)

    def decompress(self, data: bytes) -> bytes:
        return bytes(data)
