"""Error-bounded lossy compression for floating-point arrays.

The paper's future work (§VIII): "investigate … lossy compressors such
as SZ and ZFP as examined in the CODAR project." This module implements
both families from scratch, at the level the selection algorithm and
data-preparation pipeline need:

- :class:`SzLikeCodec` — SZ-style *error-bounded* prediction +
  quantization: a Lorenzo/linear predictor, uniform quantization of the
  residual in units of the error bound, and lossless entropy coding of
  the quantization codes. **Guarantee**: every reconstructed value is
  within ``error_bound`` of the original (absolute), enforced by
  falling back to exact storage for unpredictable points — the property
  the hypothesis suite proves.
- :class:`ZfpLikeCodec` — ZFP-style *fixed-rate* block coding: values
  are grouped into blocks, aligned to the block's largest exponent, and
  their mantissas truncated to a fixed number of bits per value. The
  guarantee here is the *rate* (bits/value), with error relative to the
  block's magnitude.

Lossy codecs deliberately do **not** implement the lossless
:class:`~repro.compressors.base.Codec` interface (they cannot satisfy
the round-trip identity); they expose an array-in/array-out API plus
the error metrics the CODAR-style evaluation reports.
"""

from __future__ import annotations

import struct
import zlib

import numpy as np

from repro.errors import CompressionError

_MAGIC_SZ = b"SZL1"
_MAGIC_ZFP = b"ZFL1"

_DTYPES = {0: np.float32, 1: np.float64}
_DTYPE_CODES = {np.dtype(np.float32): 0, np.dtype(np.float64): 1}


def max_abs_error(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """L∞ error between two arrays (the bound SZ-style codecs certify)."""
    if original.shape != reconstructed.shape:
        raise CompressionError("shape mismatch in error computation")
    if original.size == 0:
        return 0.0
    return float(np.max(np.abs(original.astype(np.float64) -
                               reconstructed.astype(np.float64))))


def psnr(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """Peak signal-to-noise ratio in dB (CODAR's headline metric)."""
    if original.size == 0:
        return float("inf")
    peak = float(np.max(np.abs(original))) or 1.0
    mse = float(np.mean((original.astype(np.float64) -
                         reconstructed.astype(np.float64)) ** 2))
    if mse == 0.0:
        return float("inf")
    return 20.0 * np.log10(peak) - 10.0 * np.log10(mse)


class SzLikeCodec:
    """SZ-style error-bounded predictive quantizer for 1-D float arrays.

    ``error_bound`` is the absolute L∞ bound; ``predictor`` selects
    order-1 Lorenzo (previous value) or order-2 linear extrapolation.
    Multidimensional inputs are compressed along their flattened order
    and restored to shape.
    """

    #: quantization codes span [-_QUANT_RANGE, +_QUANT_RANGE]; residuals
    #: beyond that are stored exactly ("unpredictable" points in SZ).
    _QUANT_RANGE = 1 << 20

    def __init__(self, error_bound: float, predictor: str = "lorenzo") -> None:
        if not error_bound > 0:
            raise CompressionError(
                f"error bound must be positive, got {error_bound}"
            )
        if predictor not in ("lorenzo", "linear"):
            raise CompressionError(f"unknown predictor {predictor!r}")
        self.error_bound = float(error_bound)
        self.predictor = predictor
        self.name = f"szlike({error_bound:g},{predictor})"

    # -- encode -----------------------------------------------------------

    def _predict(self, recon: np.ndarray, i: int) -> float:
        if i == 0:
            return 0.0
        if self.predictor == "lorenzo" or i == 1:
            return float(recon[i - 1])
        return float(2.0 * recon[i - 1] - recon[i - 2])

    def compress(self, array: np.ndarray) -> bytes:
        arr = np.asarray(array)
        if arr.dtype not in (np.float32, np.float64):
            raise CompressionError(
                f"szlike compresses float arrays, got {arr.dtype}"
            )
        if not np.all(np.isfinite(arr)):
            raise CompressionError("szlike requires finite values")
        shape = arr.shape
        flat = arr.reshape(-1).astype(np.float64)
        n = flat.size
        eb = self.error_bound
        codes = np.zeros(n, dtype=np.int32)
        exact_idx: list[int] = []
        exact_vals: list[float] = []
        recon = np.zeros(n, dtype=np.float64)
        for i in range(n):
            pred = self._predict(recon, i)
            code = int(np.rint((flat[i] - pred) / (2.0 * eb)))
            if abs(code) >= self._QUANT_RANGE:
                exact_idx.append(i)
                exact_vals.append(flat[i])
                recon[i] = flat[i]
                codes[i] = self._QUANT_RANGE  # sentinel
                continue
            value = pred + code * 2.0 * eb
            if abs(value - flat[i]) > eb:  # rounding edge: store exact
                exact_idx.append(i)
                exact_vals.append(flat[i])
                recon[i] = flat[i]
                codes[i] = self._QUANT_RANGE
            else:
                recon[i] = value
                codes[i] = code
        packed_codes = zlib.compress(codes.astype("<i4").tobytes(), 6)
        packed_exact = zlib.compress(
            np.asarray(exact_idx, dtype="<u8").tobytes()
            + np.asarray(exact_vals, dtype="<f8").tobytes(),
            6,
        )
        header = struct.pack(
            "<4sBBdII",
            _MAGIC_SZ,
            _DTYPE_CODES[arr.dtype],
            0 if self.predictor == "lorenzo" else 1,
            eb,
            len(shape),
            len(exact_idx),
        )
        header += struct.pack(f"<{len(shape)}Q", *shape)
        header += struct.pack("<II", len(packed_codes), len(packed_exact))
        return header + packed_codes + packed_exact

    # -- decode ----------------------------------------------------------

    def decompress(self, blob: bytes) -> np.ndarray:
        base = struct.calcsize("<4sBBdII")
        if len(blob) < base or blob[:4] != _MAGIC_SZ:
            raise CompressionError("szlike: bad magic")
        (_, dtype_code, pred_code, eb, ndim, n_exact) = struct.unpack(
            "<4sBBdII", blob[:base]
        )
        off = base
        shape = struct.unpack(f"<{ndim}Q", blob[off : off + 8 * ndim])
        off += 8 * ndim
        len_codes, len_exact = struct.unpack("<II", blob[off : off + 8])
        off += 8
        codes = np.frombuffer(
            zlib.decompress(blob[off : off + len_codes]), dtype="<i4"
        )
        off += len_codes
        exact_raw = zlib.decompress(blob[off : off + len_exact])
        exact_idx = np.frombuffer(exact_raw[: 8 * n_exact], dtype="<u8")
        exact_vals = np.frombuffer(exact_raw[8 * n_exact :], dtype="<f8")
        predictor = "lorenzo" if pred_code == 0 else "linear"
        n = int(np.prod(shape)) if shape else codes.size
        recon = np.zeros(n, dtype=np.float64)
        exact_map = dict(zip(exact_idx.tolist(), exact_vals.tolist()))
        saved_pred, self.predictor = self.predictor, predictor
        try:
            for i in range(n):
                if codes[i] == self._QUANT_RANGE:
                    recon[i] = exact_map[i]
                else:
                    recon[i] = self._predict(recon, i) + codes[i] * 2.0 * eb
        finally:
            self.predictor = saved_pred
        return recon.reshape(shape).astype(_DTYPES[dtype_code])

    def ratio(self, array: np.ndarray) -> float:
        """Original bytes / compressed bytes."""
        blob = self.compress(array)
        return array.nbytes / len(blob)


class ZfpLikeCodec:
    """ZFP-style fixed-rate block coder for 1-D float arrays.

    Blocks of ``block_size`` values share one exponent; each value's
    mantissa is kept to ``bits_per_value`` bits. Rate is exactly
    ``bits_per_value`` plus one 2-byte exponent per block.
    """

    def __init__(self, bits_per_value: int = 12, block_size: int = 64) -> None:
        if not 2 <= bits_per_value <= 32:
            raise CompressionError(
                f"bits_per_value must be in [2, 32], got {bits_per_value}"
            )
        if not 4 <= block_size <= 4096:
            raise CompressionError(
                f"block_size must be in [4, 4096], got {block_size}"
            )
        self.bits = bits_per_value
        self.block_size = block_size
        self.name = f"zfplike({bits_per_value}bpv)"

    def compress(self, array: np.ndarray) -> bytes:
        arr = np.asarray(array)
        if arr.dtype not in (np.float32, np.float64):
            raise CompressionError(
                f"zfplike compresses float arrays, got {arr.dtype}"
            )
        if not np.all(np.isfinite(arr)):
            raise CompressionError("zfplike requires finite values")
        shape = arr.shape
        flat = arr.reshape(-1).astype(np.float64)
        n = flat.size
        bs = self.block_size
        n_blocks = (n + bs - 1) // bs
        exps = np.zeros(n_blocks, dtype="<i2")
        # signed quantized values, bits-1 magnitude bits
        scale_limit = (1 << (self.bits - 1)) - 1
        quants = np.zeros(n, dtype="<i4")
        for b in range(n_blocks):
            chunk = flat[b * bs : (b + 1) * bs]
            peak = float(np.max(np.abs(chunk))) if chunk.size else 0.0
            if peak == 0.0:
                exps[b] = -(1 << 14)  # "all zero" sentinel
                continue
            exp = int(np.ceil(np.log2(peak))) if peak > 0 else 0
            exps[b] = exp
            scale = scale_limit / (2.0 ** exp)
            quants[b * bs : (b + 1) * bs] = np.clip(
                np.rint(chunk * scale), -scale_limit - 1, scale_limit
            ).astype("<i4")
        packed = zlib.compress(quants.tobytes() + exps.tobytes(), 1)
        header = struct.pack(
            "<4sBBHI",
            _MAGIC_ZFP,
            _DTYPE_CODES[arr.dtype],
            self.bits,
            self.block_size,
            len(shape),
        )
        header += struct.pack(f"<{len(shape)}Q", *shape)
        return header + packed

    def decompress(self, blob: bytes) -> np.ndarray:
        base = struct.calcsize("<4sBBHI")
        if len(blob) < base or blob[:4] != _MAGIC_ZFP:
            raise CompressionError("zfplike: bad magic")
        _, dtype_code, bits, bs, ndim = struct.unpack("<4sBBHI", blob[:base])
        off = base
        shape = struct.unpack(f"<{ndim}Q", blob[off : off + 8 * ndim])
        off += 8 * ndim
        raw = zlib.decompress(blob[off:])
        n = int(np.prod(shape)) if shape else 0
        n_blocks = (n + bs - 1) // bs
        quants = np.frombuffer(raw[: 4 * n], dtype="<i4")
        exps = np.frombuffer(raw[4 * n : 4 * n + 2 * n_blocks], dtype="<i2")
        scale_limit = (1 << (bits - 1)) - 1
        out = np.zeros(n, dtype=np.float64)
        for b in range(n_blocks):
            if exps[b] == -(1 << 14):
                continue
            scale = scale_limit / (2.0 ** int(exps[b]))
            out[b * bs : (b + 1) * bs] = (
                quants[b * bs : (b + 1) * bs] / scale
            )
        return out.reshape(shape).astype(_DTYPES[dtype_code])

    def ratio(self, array: np.ndarray) -> float:
        blob = self.compress(array)
        return array.nbytes / len(blob)

    def block_relative_error_bound(self) -> float:
        """Worst-case error relative to each block's peak magnitude:
        half a quantization step."""
        return 1.0 / ((1 << (self.bits - 1)) - 1)
