"""*protocol-conformance*: the wire protocol's three invariants.

FanStore's request/reply protocol is convention, not schema: requests
are ``(kind, body)`` tuples on a well-known tag (``TAG_DAEMON``,
``TAG_MEMBER``), dispatched by string-matching ``kind`` in a serve
loop, and bodies have grown by appended optional fields: the legacy
2-tuple ``(subject, reply_tag)``, the traced 3-tuple adding
``trace_ctx``, the deadline-propagating 4-tuple adding an absolute
``deadline``, and — since epoch fencing landed — the 5-tuple adding
the sender's fencing token (membership view ``epoch``). This pass
recovers the protocol from the AST and checks:

1. every ``kind`` emitted on a tag has a matching dispatch arm in that
   tag's serve loop (an unhandled kind hangs the sender forever — the
   reply never comes);
2. the serve loop unpacks the request body with a starred target, so
   all arities parse;
3. every wire body the request helper builds is one of the
   2/3/4/5-tuple forms *or* a typed v2 envelope
   (``Request(...).encode()``, see :mod:`repro.fanstore.wire`), and a
   fenced form — the 5-tuple, or an envelope carrying an ``epoch=``
   token — is among them (a helper that only builds unfenced forms
   sends mutations the server can never fence as stale — split-brain
   protection silently dropped). An envelope built without ``epoch=``
   is flagged directly: the field exists precisely so no sender has an
   excuse to drop the token.

Recognised idioms: a *dispatcher* is any method that calls
``recv``/``try_recv`` with a ``TAG_<NAME>`` constant; its handled kinds
are the string literals compared against a name inside it. A *request
helper* is a method that sends ``(param, ...)`` on a tag, where
``param`` is one of its own parameters — calls to it with a literal
first argument emit that literal as a kind. A wire body is an
*envelope* when it is a call to a constructor named ``Request``.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable

from repro.analysis.core import Finding, LintPass, Project, SourceFile

_TAG_RE = re.compile(r"^TAG_[A-Z_0-9]+$")


def _terminal_name(node: ast.expr) -> str | None:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _tag_of(node: ast.expr) -> str | None:
    name = _terminal_name(node)
    if name is not None and _TAG_RE.match(name):
        return name
    return None


def _recv_tag(call: ast.Call) -> str | None:
    """The TAG_* constant a ``recv``/``try_recv`` call listens on."""
    fn = call.func
    if not (isinstance(fn, ast.Attribute) and fn.attr in ("recv", "try_recv")):
        return None
    for arg in call.args[1:2]:  # (source, tag, ...)
        return _tag_of(arg)
    return None


def _send_parts(call: ast.Call) -> tuple[ast.expr, str] | None:
    """For ``x.send(payload, dest, TAG_*)``: (payload, tag name)."""
    fn = call.func
    if not (isinstance(fn, ast.Attribute) and fn.attr == "send"):
        return None
    if len(call.args) < 3:
        return None
    tag = _tag_of(call.args[2])
    if tag is None:
        return None
    return call.args[0], tag


class _MethodInfo:
    def __init__(self, cls: str, node: ast.FunctionDef) -> None:
        self.cls = cls
        self.node = node
        self.params = {
            a.arg for a in list(node.args.args) + list(node.args.kwonlyargs)
        }


def _methods(tree: ast.Module) -> list[_MethodInfo]:
    out = []
    for cls in ast.walk(tree):
        if isinstance(cls, ast.ClassDef):
            for item in cls.body:
                if isinstance(item, ast.FunctionDef):
                    out.append(_MethodInfo(cls.name, item))
    return out


class ProtocolConformancePass(LintPass):
    rule = "protocol-conformance"
    title = "every emitted kind has a dispatch arm; body arity is 2 through 5"

    def run(self, project: Project) -> Iterable[Finding]:
        findings: list[Finding] = []
        for src in project:
            if src.parse_error is not None:
                continue
            findings.extend(self._check_file(src))
        return findings

    def _check_file(self, src: SourceFile) -> list[Finding]:
        methods = _methods(src.tree)
        dispatchers: dict[str, _MethodInfo] = {}
        for m in methods:
            for node in ast.walk(m.node):
                if isinstance(node, ast.Call):
                    tag = _recv_tag(node)
                    if tag is not None:
                        dispatchers.setdefault(tag, m)

        # kind-forwarding request helpers: method sends (own param, ...) on a tag
        helpers: dict[str, str] = {}  # method name -> tag
        for m in methods:
            for node in ast.walk(m.node):
                if not isinstance(node, ast.Call):
                    continue
                parts = _send_parts(node)
                if parts is None:
                    continue
                payload, tag = parts
                if (
                    isinstance(payload, ast.Tuple)
                    and payload.elts
                    and isinstance(payload.elts[0], ast.Name)
                    and payload.elts[0].id in m.params
                ):
                    helpers.setdefault(m.node.name, tag)

        # emitted kinds: direct literal sends + literal calls to helpers
        emitted: dict[str, list[tuple[str, int]]] = {}
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            parts = _send_parts(node)
            if parts is not None:
                payload, tag = parts
                if (
                    isinstance(payload, ast.Tuple)
                    and payload.elts
                    and isinstance(payload.elts[0], ast.Constant)
                    and isinstance(payload.elts[0].value, str)
                ):
                    emitted.setdefault(tag, []).append(
                        (payload.elts[0].value, node.lineno)
                    )
                continue
            fn = node.func
            if (
                isinstance(fn, ast.Attribute)
                and fn.attr in helpers
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)
            ):
                emitted.setdefault(helpers[fn.attr], []).append(
                    (node.args[0].value, node.lineno)
                )

        findings: list[Finding] = []

        # 1. every emitted kind must have a dispatch arm
        for tag, kinds in sorted(emitted.items()):
            dispatcher = dispatchers.get(tag)
            if dispatcher is None:
                continue  # replies / tags consumed without kind dispatch
            handled = self._handled_kinds(dispatcher.node)
            if not handled:
                continue  # receive loop without string dispatch
            for kind, lineno in kinds:
                if kind not in handled:
                    findings.append(
                        self.finding(
                            src,
                            lineno,
                            f"kind '{kind}' emitted on {tag} has no arm in "
                            f"{dispatcher.cls}.{dispatcher.node.name} "
                            f"(handles: {', '.join(sorted(handled))}); the "
                            "sender would wait forever",
                        )
                    )

        # 2. dispatcher body unpack must be variable-arity
        for tag, dispatcher in sorted(dispatchers.items()):
            if tag not in emitted:
                continue
            findings.extend(self._check_unpack(src, dispatcher))

        # 3. request helpers must build protocol arities, incl. the
        #    epoch-fenced 5-tuple
        for m in methods:
            if m.node.name in helpers:
                findings.extend(self._check_wire_arity(src, m))
        return findings

    @staticmethod
    def _handled_kinds(fn: ast.FunctionDef) -> set[str]:
        handled: set[str] = set()
        for node in ast.walk(fn):
            if not isinstance(node, ast.Compare):
                continue
            if not isinstance(node.left, ast.Name):
                continue
            for op, comp in zip(node.ops, node.comparators):
                if isinstance(op, (ast.Eq, ast.NotEq)):
                    if isinstance(comp, ast.Constant) and isinstance(
                        comp.value, str
                    ):
                        handled.add(comp.value)
                elif isinstance(op, (ast.In, ast.NotIn)):
                    if isinstance(comp, (ast.Tuple, ast.List, ast.Set)):
                        for elt in comp.elts:
                            if isinstance(elt, ast.Constant) and isinstance(
                                elt.value, str
                            ):
                                handled.add(elt.value)
        return handled

    def _check_unpack(
        self, src: SourceFile, dispatcher: _MethodInfo
    ) -> list[Finding]:
        """Tuple-unpacks of a request body inside the dispatcher must
        carry a starred target (variable arity)."""
        findings = []
        for node in ast.walk(dispatcher.node):
            if not isinstance(node, ast.Assign):
                continue
            if not (
                isinstance(node.value, ast.Name)
                and node.value.id in ("body", "payload_body")
            ):
                continue
            for target in node.targets:
                if isinstance(target, (ast.Tuple, ast.List)):
                    if not any(
                        isinstance(e, ast.Starred) for e in target.elts
                    ):
                        findings.append(
                            self.finding(
                                src,
                                node.lineno,
                                f"{dispatcher.cls}.{dispatcher.node.name} "
                                "unpacks the request body with fixed arity; "
                                "use a starred target so the 2- through "
                                "5-tuple body forms all parse",
                            )
                        )
        return findings

    def _check_wire_arity(
        self, src: SourceFile, helper: _MethodInfo
    ) -> list[Finding]:
        findings = []
        arities: set[int] = set()
        envelopes = 0
        fenced_envelope = False
        first_line = helper.node.lineno
        for node in ast.walk(helper.node):
            if (
                isinstance(node, ast.Call)
                and _terminal_name(node.func) == "Request"
            ):
                envelopes += 1
                kwargs = {kw.arg for kw in node.keywords}
                if "epoch" in kwargs:
                    fenced_envelope = True
                else:
                    findings.append(
                        self.finding(
                            src,
                            node.lineno,
                            "request envelope built without an epoch= "
                            "fencing token; the server cannot reject this "
                            "request when it was decided under a stale "
                            "membership view",
                        )
                    )
                continue
            if not isinstance(node, ast.Tuple):
                continue
            if not any(
                isinstance(e, ast.Name) and e.id.endswith("reply_tag")
                for e in node.elts
            ):
                continue
            arities.add(len(node.elts))
            if len(node.elts) not in (2, 3, 4, 5):
                findings.append(
                    self.finding(
                        src,
                        node.lineno,
                        f"wire body built with {len(node.elts)} fields; the "
                        "protocol defines only (subject, reply_tag"
                        "[, trace_ctx[, deadline[, epoch]]]) or a typed "
                        "Request envelope",
                    )
                )
        if (
            (arities or envelopes)
            and arities.isdisjoint({5})
            and not fenced_envelope
        ):
            findings.append(
                self.finding(
                    src,
                    first_line,
                    f"{helper.cls}.{helper.node.name} never builds a fenced "
                    "wire body (the epoch 5-tuple or a Request envelope "
                    "with epoch=); without a fencing token the server "
                    "cannot reject this request when it was decided under "
                    "a stale membership view",
                )
            )
        return findings
