"""The gray-failure drill: one rank is slow — not dead — and the read
path routes around it.

A persistently slow rank defeats every PR-5 mechanism by design: it
heartbeats on time (membership never convicts), answers every fetch
(retries never exhaust), and serves correct bytes (no integrity
failure). These drills pin seeds and drive the gray-failure layer end
to end: hedged reads win against the slow rank, its circuit breaker
opens and traffic detours to the replica tier, healing half-opens the
breaker and a probe closes it, and no read ever outlives its deadline.
A separate burst drill exercises admission control: a pre-loaded
mailbox is shed nearest-deadline-first with overload replies, and
already-expired requests are dropped, not answered.

Partition geometry (3 ranks, ``extra_partition_budget=1``): rank *r*
holds its own partition plus the ring copy of partition *r−1*, so each
rank's remote reads are exactly one partition — rank 1's all come from
rank 2 (the slow one), rank 0's all from rank 1 (healthy). That makes
the per-rank counters exact, not statistical.
"""

from __future__ import annotations

import time

import pytest

from repro.comm.chaos import ChaosWorld, FaultPlan
from repro.comm.communicator import ANY_SOURCE
from repro.comm.launcher import run_parallel
from repro.fanstore.daemon import (
    _OVERLOAD,
    _REPLY_TAG_BASE,
    TAG_DAEMON,
    DaemonConfig,
    FanStoreDaemon,
)
from repro.fanstore.health import BreakerState
from repro.fanstore.metadata import normalize
from repro.fanstore.store import FanStore, FanStoreOptions

GRAY_SEEDS = (5, 55, 555)
seeds = pytest.mark.parametrize(
    "seed", GRAY_SEEDS, ids=[f"seed{s}" for s in GRAY_SEEDS]
)

RANKS = 3
SLOW = 2
SLOW_S = 0.12  # every data-plane reply from SLOW arrives this late
RESET_AFTER = 0.4

#: hedging on, tight budgets, breaker tuned so three slow strikes open
GRAY = dict(
    extra_partition_budget=1,
    request_timeout=0.5,
    request_deadline=1.0,
    max_retries=1,
    retry_backoff_base=0.01,
    retry_backoff_max=0.05,
    retry_jitter=0.0,
    hedge_reads=True,
    hedge_after_s=0.03,
    breaker_slow_threshold=3,
    breaker_reset_after=RESET_AFTER,
)


@pytest.fixture(scope="module")
def originals(raw_dataset_dir):
    expected = {}
    train = raw_dataset_dir / "train"
    for p in sorted(train.rglob("*")):
        if p.is_file():
            expected[normalize(str(p.relative_to(train)))] = p.read_bytes()
    for p in sorted((raw_dataset_dir / "val").iterdir()):
        if p.is_file():
            expected[f"val/{p.name}"] = p.read_bytes()
    return expected


def _timed_read_all(fs, timings):
    out = {}
    for rec in fs.daemon.metadata.walk_files():
        t0 = time.perf_counter()
        out[rec.path] = fs.client.read_file(rec.path)
        timings.append(time.perf_counter() - t0)
    return out


class TestGrayFailureDrill:
    @seeds
    def test_slow_rank_hedged_around_then_recovered(
        self, seed, prepared_dataset, originals
    ):
        plan = FaultPlan(seed).slow_rank(
            SLOW, SLOW_S, min_tag=_REPLY_TAG_BASE
        )
        world = ChaosWorld(RANKS, plan)
        config = DaemonConfig(**GRAY)

        def body(comm):
            opts = FanStoreOptions(comm=comm, config=config)
            with FanStore(prepared_dataset, opts) as fs:
                comm.barrier()  # everyone loaded and serving
                timings: list[float] = []
                # phase 1: SLOW limps; reads stay correct and fast
                assert _timed_read_all(fs, timings) == originals
                comm.barrier()
                if comm.rank == 0:
                    plan.heal(SLOW)
                comm.barrier()
                # phase 2: past the cool-off the breaker half-opens;
                # the first fetch probes the healed rank and closes it
                time.sleep(RESET_AFTER + 0.15)
                assert _timed_read_all(fs, timings) == originals
                comm.barrier()
                s = fs.daemon.stats
                return {
                    "hedged": s.hedged_reads,
                    "wins": s.hedge_wins,
                    "opens": s.breaker_opens,
                    "probes": s.breaker_probes,
                    "skips": s.breaker_skips,
                    "aborts": s.deadline_aborts,
                    "degraded": s.degraded_reads,
                    "slow_state": fs.daemon.health.state(SLOW).value,
                    "max_read_s": max(timings),
                }

        results = run_parallel(body, RANKS, world=world, timeout=120)
        assert plan.stats.slowed >= 1  # the gray failure actually fired

        r1 = results[1]  # the only rank whose remote reads hit SLOW
        assert r1["hedged"] >= 1 and r1["wins"] >= 1
        assert r1["opens"] >= 1  # slow strikes opened the breaker
        assert r1["skips"] >= 1  # at least one fetch skipped SLOW outright
        assert r1["probes"] >= 1  # post-heal half-open probe went through
        assert r1["slow_state"] == BreakerState.CLOSED.value  # and passed

        for rank, res in enumerate(results):
            # every read on every rank stayed within its deadline — the
            # whole point of hedging: tail tolerance without timeouts
            assert res["max_read_s"] < config.request_deadline, (rank, res)
            assert res["aborts"] == 0
            assert res["degraded"] == 0  # no shared-FS fallback needed

        # rank 0 never talks to SLOW (its remote partition is rank 1's):
        # hedging must cost a healthy rank nothing
        assert results[0]["wins"] == 0
        assert results[0]["opens"] == 0
        assert results[0]["slow_state"] == BreakerState.CLOSED.value

    @seeds
    def test_unhedged_control_run_is_clean(self, seed, prepared_dataset):
        """Without chaos, the gray-failure config changes nothing: no
        hedges fire (the home answers well inside the hedge delay), no
        breaker moves, no deadline trips."""
        config = DaemonConfig(**GRAY)
        world = ChaosWorld(RANKS, FaultPlan(seed))

        def body(comm):
            opts = FanStoreOptions(comm=comm, config=config)
            with FanStore(prepared_dataset, opts) as fs:
                for rec in fs.daemon.metadata.walk_files():
                    fs.client.read_file(rec.path)
                s = fs.daemon.stats
                return (s.hedged_reads, s.breaker_opens, s.deadline_aborts,
                        s.overload_backoffs)

        results = run_parallel(body, RANKS, world=world, timeout=120)
        assert results == [(0, 0, 0, 0)] * RANKS


#: burst-drill coordination tags (outside the daemon's bands)
_TAG_SYNC = 0x0B00
_BURST = 10
_CAPACITY = 8
_EXPIRED = 3  # of the burst, sent with already-expired deadlines


class TestAdmissionControlBurst:
    def test_burst_is_shed_nearest_deadline_first(self):
        """Pre-load a stopped daemon's mailbox past queue capacity:
        the two most-overdue requests are shed with overload replies,
        the remaining expired one is admitted but dropped unserved, and
        every in-deadline request is answered."""
        config = DaemonConfig(
            max_queue_depth=_CAPACITY, overload_retry_after_s=0.07
        )

        def body(comm):
            if comm.rank == 0:
                daemon = FanStoreDaemon(comm, config=config)
                comm.barrier()  # rank 1 has filled our mailbox
                daemon.start()
                comm.barrier()  # rank 1 verified every reply
                daemon.stop()
                s = daemon.stats
                return (s.shed_requests, s.deadline_expired_drops,
                        s.served_requests, s.malformed_requests)

            now = time.monotonic()
            tags = list(range(0x7100, 0x7100 + _BURST))
            # requests 0..2 already expired (0 the most overdue),
            # 3..9 comfortably in budget
            deadlines = [now - (_EXPIRED - i) for i in range(_EXPIRED)]
            deadlines += [now + 30.0] * (_BURST - _EXPIRED)
            for tag, dl in zip(tags, deadlines):
                comm.send(
                    ("fetch", (f"no/such/{tag:#x}", tag, None, dl)),
                    0, TAG_DAEMON,
                )
            comm.barrier()  # mailbox full; rank 0 starts serving
            overloaded, answered = [], []
            for tag in tags[:2] + tags[_EXPIRED:]:
                reply = comm.recv(0, tag, timeout=20)
                if reply[0] == _OVERLOAD:
                    overloaded.append((tag, reply[1]))
                else:
                    answered.append((tag, reply))
            # service is FIFO: once the last tag answered, the dropped
            # request's silence is final
            assert comm.try_recv(ANY_SOURCE, tags[2]) is None
            comm.barrier()
            return overloaded, answered

        results = run_parallel(body, 2, timeout=60)
        shed, dropped, served, malformed = results[0]
        overloaded, answered = results[1]
        n_shed = _BURST - _CAPACITY
        assert (shed, dropped, served) == (n_shed, 1, _BURST - n_shed - 1)
        assert malformed == 0
        # the two most-overdue requests were the ones shed, and each
        # carried the server's suggested back-off
        assert [t for t, _ in overloaded] == [0x7100, 0x7101]
        assert all(ra == pytest.approx(0.07) for _, ra in overloaded)
        # every in-deadline request got an authoritative not-found
        assert [r for _, r in answered] == [
            (False, f"no/such/{t:#x}") for t in range(0x7103, 0x710a)
        ]
