"""Integrity tax — what verify-on-read and the scrubber cost.

The digest layer must be effectively free on the hot path: a crc32 of
the compressed payload next to a zlib decompression of it. The same
single-node store reads its full namespace with ``verify_reads`` on and
off; the delta is the whole tax, and the acceptance bar is <10 %.
The second table is scrubber bandwidth: a full digest sweep (shallow)
and a decompress-everything sweep (deep), in MB/s of compressed bytes.
"""

from __future__ import annotations

import time

from repro.bench.report import PaperComparison
from repro.fanstore.daemon import DaemonConfig
from repro.fanstore.scrub import Scrubber
from repro.fanstore.store import FanStore, FanStoreOptions

ROUNDS = 5


def _read_pass(fs) -> int:
    total = 0
    for rec in fs.daemon.metadata.walk_files():
        total += len(fs.client.read_file(rec.path))
    return total


def _timed_reads(prepared, verify: bool) -> tuple[float, int]:
    """Best-of-ROUNDS full-namespace read pass."""
    config = DaemonConfig(verify_reads=verify)
    with FanStore(prepared, FanStoreOptions(config=config)) as fs:
        _read_pass(fs)  # warm the OS page cache / backend staging
        best, nbytes = float("inf"), 0
        for _ in range(ROUNDS):
            start = time.perf_counter()
            nbytes = _read_pass(fs)
            best = min(best, time.perf_counter() - start)
    return best, nbytes


def test_verify_on_read_overhead(benchmark, em_store, emit_report):
    prepared = em_store.prepared

    def run_both():
        plain, nbytes = _timed_reads(prepared, verify=False)
        verified, _ = _timed_reads(prepared, verify=True)
        return plain, verified, nbytes

    plain, verified, nbytes = benchmark.pedantic(run_both, rounds=1,
                                                 iterations=1)
    overhead = (verified - plain) / plain * 100.0

    report = PaperComparison(
        "Integrity verify-on-read overhead",
        "full-namespace read pass (24 files, zlib-1), best of "
        f"{ROUNDS} rounds, digests checked vs. skipped",
        columns=["configuration", "wall s", "MB/s plaintext", "overhead %"],
    )
    mb = nbytes / 1e6
    report.add_row("verify_reads=False", round(plain, 4),
                   round(mb / plain, 1), "-")
    report.add_row("verify_reads=True", round(verified, 4),
                   round(mb / verified, 1), round(overhead, 2))
    report.add_note("the digest is crc32 over the *compressed* payload, "
                    "so the check is linear in the smaller byte count "
                    "and hides behind decompression")
    emit_report(report)

    assert overhead < 10.0, f"verify tax {overhead:.2f}% >= 10%"


def test_scrubber_throughput(benchmark, em_store, emit_report):
    fs = em_store

    def sweep(deep: bool):
        scrubber = Scrubber(fs.daemon, repair=True, deep=deep)
        best_report = None
        for _ in range(ROUNDS):
            report = scrubber.run()
            if best_report is None or report.elapsed_s < best_report.elapsed_s:
                best_report = report
        return best_report

    shallow, deep = benchmark.pedantic(
        lambda: (sweep(False), sweep(True)), rounds=1, iterations=1
    )

    report = PaperComparison(
        "Scrubber throughput",
        f"full sweep over one rank's staged records, best of {ROUNDS}",
        columns=["mode", "records", "MB compressed", "wall s", "MB/s"],
    )
    for name, r in (("shallow (crc32)", shallow),
                    ("deep (crc32 + decompress)", deep)):
        mb = r.bytes_scanned / 1e6
        report.add_row(name, r.scanned, round(mb, 2), round(r.elapsed_s, 4),
                       round(mb / r.elapsed_s, 1))
    report.add_note("shallow scrubbing is pure digest bandwidth; deep "
                    "mode pays one decompression per record and exists "
                    "for datasets packed before digests")
    emit_report(report)

    assert shallow.clean and deep.clean
    assert shallow.scanned == deep.scanned > 0
