"""Profiling helpers that produce the selection algorithm's inputs.

§VI-B: "``S_batch`` and ``Tpt_decom(c)`` can be estimated with samples
using a set of candidate compressors. ``Tpt_read`` and ``Bdw_read`` can
be determined by an I/O performance benchmark." These helpers implement
both measurements — real ones against a live FanStore client / the
compressor suite on this host, and modeled ones against the calibrated
storage models for cluster-scale numbers.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

from repro.compressors.base import Compressor
from repro.compressors.profiles import PaperProfile
from repro.errors import SelectionError
from repro.fanstore.client import FanStoreClient
from repro.selection.model import CompressorCandidate, IoPerformance
from repro.simnet.devices import StorageModel


@dataclass(frozen=True)
class DecompressionProfile:
    """Measured decompression behaviour of one compressor on samples."""

    name: str
    ratio: float
    cost_per_file: float  # seconds
    throughput: float  # files/s

    def as_candidate(self) -> CompressorCandidate:
        return CompressorCandidate(
            name=self.name,
            ratio=max(self.ratio, 1.0),
            decompress_cost=self.cost_per_file,
        )


def profile_compressor(
    compressor: Compressor, samples: Sequence[bytes], *, repetitions: int = 3
) -> DecompressionProfile:
    """Measure ``Tpt_decom`` and ratio of a real suite member on samples."""
    if not samples:
        raise SelectionError("need at least one sample")
    compressed = [compressor.compress(s) for s in samples]
    start = time.perf_counter()
    for _ in range(repetitions):
        for c in compressed:
            compressor.decompress(c)
    elapsed = time.perf_counter() - start
    n = len(samples) * repetitions
    total_in = sum(len(s) for s in samples)
    total_out = sum(len(c) for c in compressed)
    return DecompressionProfile(
        name=compressor.name,
        ratio=total_in / max(total_out, 1),
        cost_per_file=elapsed / n,
        throughput=n / max(elapsed, 1e-12),
    )


def profile_from_metrics(registry, name: str) -> DecompressionProfile | None:
    """Rebuild a :class:`DecompressionProfile` from the live
    ``codec.<name>.*`` metrics the daemon's observed reads accumulate
    (:meth:`FanStoreDaemon._decompress` with ``observed=True``) — the
    production-traffic counterpart of :func:`profile_compressor`, no
    offline sampling pass needed. Returns None when the codec has no
    observations yet.

    ``registry`` is a :class:`repro.obs.metrics.MetricsRegistry` (or a
    :class:`~repro.obs.metrics.MetricsSnapshot` would need its own
    reader — this reads the live objects)."""
    hist_name = f"codec.{name}.decode_seconds"
    if hist_name not in registry:
        return None
    hist = registry.get(hist_name)
    if hist.count == 0:
        return None
    plain = registry.get(f"codec.{name}.decode_bytes").value
    packed = registry.get(f"codec.{name}.decode_compressed_bytes").value
    return DecompressionProfile(
        name=name,
        ratio=plain / max(packed, 1),
        cost_per_file=hist.sum / hist.count,
        throughput=hist.count / max(hist.sum, 1e-12),
    )


def candidates_from_metrics(
    registry, names: Sequence[str] | None = None
) -> list[CompressorCandidate]:
    """Selection candidates for every codec the registry has decode
    observations for (or the named subset) — feeds production traffic
    straight into the §VI-B selection algorithm."""
    if names is None:
        prefix, suffix = "codec.", ".decode_seconds"
        names = sorted(
            n[len(prefix):-len(suffix)]
            for n in registry.names()
            if n.startswith(prefix) and n.endswith(suffix)
        )
    candidates = []
    for name in names:
        profile = profile_from_metrics(registry, name)
        if profile is not None:
            candidates.append(profile.as_candidate())
    return candidates


def candidate_from_profile(
    profile: PaperProfile, dataset: str, avg_file_size: int, arch: str = "skx"
) -> CompressorCandidate:
    """Turn a calibrated paper profile into a selection candidate for a
    dataset and average file size (the modeled path of Table VII)."""
    return CompressorCandidate(
        name=profile.name,
        ratio=profile.ratio_for(dataset),
        decompress_cost=profile.decompress_cost(avg_file_size, arch),
    )


def measure_client_read(
    client: FanStoreClient,
    paths: Sequence[str],
    *,
    repetitions: int = 1,
) -> IoPerformance:
    """Measure a live client's (``Tpt_read``, ``Bdw_read``) on this host
    by timing whole-file reads through the POSIX path."""
    if not paths:
        raise SelectionError("need at least one path")
    total_bytes = 0
    start = time.perf_counter()
    for _ in range(repetitions):
        for p in paths:
            total_bytes += len(client.read_file(p))
    elapsed = max(time.perf_counter() - start, 1e-12)
    files = len(paths) * repetitions
    return IoPerformance(tpt_read=files / elapsed, bdw_read=total_bytes / elapsed)


def model_read_performance(
    model: StorageModel, file_size: int, *, streams: int = 1
) -> IoPerformance:
    """Table VI from a calibrated storage model (cluster-scale numbers)."""
    tpt, bdw = model.table6_row(file_size, streams)
    return IoPerformance(tpt_read=tpt, bdw_read=bdw)
