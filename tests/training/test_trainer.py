"""The functional data-parallel trainer: replica consistency,
checkpoint/resume, logging through the FanStore write path."""

from __future__ import annotations

import numpy as np
import pytest

from repro.comm.launcher import run_parallel
from repro.fanstore.faults import CheckpointManager
from repro.fanstore.store import FanStore
from repro.training.loader import SyncLoader, list_training_files
from repro.training.models import MLP
from repro.training.trainer import DataParallelTrainer, make_array_collate

FEATURES = 16
CLASSES = 3


def em_decoder(raw: bytes, path: str):
    """Deterministic features from file bytes; label from the class dir."""
    arr = np.frombuffer(raw[8 : 8 + FEATURES * 8], dtype=np.uint8)
    features = arr[:FEATURES].astype(np.float64) / 255.0
    label = int(path.split("/")[0].removeprefix("cls"))
    return features, label


def make_trainer(store, *, comm=None, checkpoints=None, epochs=2, seed=0):
    files = [
        p for p in list_training_files(store.client) if p.startswith("cls")
    ]
    loader = SyncLoader(
        store.client,
        files,
        batch_size=6,
        epochs=epochs,
        rank=comm.rank if comm else 0,
        world_size=comm.size if comm else 1,
        seed=seed,
        decoder=em_decoder,
    )
    model = MLP([FEATURES, 12, CLASSES], seed=42)
    return DataParallelTrainer(
        model,
        loader,
        make_array_collate((FEATURES,), CLASSES),
        comm=comm,
        lr=0.1,
        checkpoints=checkpoints,
        log_client=store.client,
    )


class TestSingleNode:
    def test_runs_and_reports(self, single_store):
        trainer = make_trainer(single_store)
        report = trainer.train()
        assert report.iterations == 4  # 12 files / 6 per batch × 2 epochs
        assert report.epochs_completed == 2
        assert report.bytes_read > 0
        assert len(report.losses) == report.iterations
        assert report.mean_iteration_seconds > 0

    def test_loss_decreases_over_epochs(self, single_store):
        trainer = make_trainer(single_store, epochs=30)
        report = trainer.train()
        early = np.mean(report.losses[:3])
        late = np.mean(report.losses[-3:])
        assert late < early

    def test_log_written_through_fanstore(self, single_store):
        trainer = make_trainer(single_store)
        trainer.train()
        log = single_store.client.read_file(trainer.log_path).decode()
        assert "epoch=0" in log and "loss=" in log


class TestCheckpointResume:
    def test_checkpoints_per_epoch(self, single_store, tmp_path):
        mgr = CheckpointManager(tmp_path)
        make_trainer(single_store, checkpoints=mgr, epochs=3).train()
        assert mgr.epochs() == [0, 1, 2]

    def test_resume_skips_completed_epochs(self, single_store, tmp_path):
        mgr = CheckpointManager(tmp_path)
        full = make_trainer(single_store, checkpoints=mgr, epochs=3)
        full_report = full.train()
        resumed = make_trainer(single_store, checkpoints=mgr, epochs=3)
        report = resumed.train(resume=True)
        assert report.resumed_from_epoch == 2
        assert report.iterations == 0  # everything already covered
        np.testing.assert_allclose(
            resumed.model.get_flat_params(), full.model.get_flat_params()
        )

    def test_partial_resume_continues(self, single_store, tmp_path):
        mgr = CheckpointManager(tmp_path)
        make_trainer(single_store, checkpoints=mgr, epochs=1).train()
        cont = make_trainer(single_store, checkpoints=mgr, epochs=3)
        report = cont.train(resume=True)
        assert report.resumed_from_epoch == 0
        assert report.iterations == 4  # epochs 1 and 2 only


class TestDataParallel:
    def test_replicas_stay_identical(self, prepared_dataset):
        def body(comm):
            with FanStore(prepared_dataset, comm=comm) as fs:
                trainer = make_trainer(fs, comm=comm, epochs=2)
                report = trainer.train()
                return (
                    trainer.model.get_flat_params(),
                    tuple(report.losses),
                )

        results = run_parallel(body, 3, timeout=120)
        params0, losses0 = results[0]
        for params, losses in results[1:]:
            np.testing.assert_array_equal(params, params0)
            assert losses == losses0

    def test_parallel_matches_serial_direction(self, prepared_dataset,
                                               single_store):
        """Averaged-gradient parallel training must track single-node
        training on the same global batches (identical, given the
        deterministic sharded loader and sum-then-average)."""
        serial = make_trainer(single_store, epochs=1, seed=5)
        serial_report = serial.train()

        def body(comm):
            with FanStore(prepared_dataset, comm=comm) as fs:
                trainer = make_trainer(fs, comm=comm, epochs=1, seed=5)
                trainer.train()
                return trainer.model.get_flat_params()

        results = run_parallel(body, 2, timeout=120)
        # Same batches split across 2 ranks; sample-mean gradients of
        # sub-batches averaged == full-batch gradient.
        np.testing.assert_allclose(
            results[0], serial.model.get_flat_params(), rtol=1e-8
        )
        assert serial_report.iterations == 2


class TestFusionTraining:
    def test_fused_matches_monolithic(self, prepared_dataset):
        """§II-A's fusion buffer changes the allreduce schedule but not
        the training math: final parameters identical."""

        def run(fusion_bytes):
            def body(comm):
                with FanStore(prepared_dataset, comm=comm) as fs:
                    trainer = make_trainer(fs, comm=comm, epochs=1, seed=8)
                    trainer.fusion_bytes = fusion_bytes
                    trainer.train()
                    return trainer.model.get_flat_params()

            return run_parallel(body, 2, timeout=120)[0]

        mono = run(None)
        fused_small = run(256)
        fused_big = run(1 << 22)
        np.testing.assert_allclose(mono, fused_small, atol=1e-12)
        np.testing.assert_allclose(mono, fused_big, atol=1e-12)
