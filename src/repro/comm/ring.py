"""Virtual-ring block transfers (§V-D).

When a FanStore process decides to host *extra* partitions beyond its
assigned ones, it does not re-read them from the shared file system —
it copies them from its neighbor in a virtual ring, so every transfer
is neighbor-to-neighbor and (with equal partition sizes) contention-free
by construction. This module implements that pattern over the
communicator and exposes the schedule for the ablation benchmark.
"""

from __future__ import annotations

from typing import Any

from repro.comm.communicator import Communicator

_RING_TAG = 0x7219


def ring_neighbors(rank: int, size: int) -> tuple[int, int]:
    """(left, right) neighbors of ``rank`` on the virtual ring."""
    return (rank - 1) % size, (rank + 1) % size


def ring_exchange(
    comm: Communicator, block: Any, *, rounds: int = 1, timeout: float | None = 60.0
) -> list[Any]:
    """Shift blocks around the ring ``rounds`` times.

    Each round, every rank sends its current block to its right neighbor
    and receives from its left. Returns the blocks received per round —
    after ``size - 1`` rounds every rank has seen every block (the ring
    allgather the paper's partition replication builds on).
    """
    left, right = ring_neighbors(comm.rank, comm.size)
    received: list[Any] = []
    current = block
    for _ in range(rounds):
        comm.send(current, right, _RING_TAG)
        current = comm.recv(left, _RING_TAG, timeout=timeout)
        received.append(current)
    return received


def ring_replicate(
    comm: Communicator,
    block: Any,
    copies: int,
    *,
    timeout: float | None = 60.0,
) -> list[Any]:
    """Obtain ``copies`` additional neighbor partitions (§IV-C1 extra-
    partition load): after this call each rank holds its own block plus
    the blocks of its ``copies`` nearest left neighbors.

    ``copies`` must be < world size."""
    if copies < 0 or copies >= comm.size:
        raise ValueError(
            f"copies must be in [0, {comm.size - 1}], got {copies}"
        )
    if copies == 0:
        return []
    return ring_exchange(comm, block, rounds=copies, timeout=timeout)
