"""Partition/dataset inspection tool: ``fanstore-inspect``.

Operational tooling the original system ships alongside the preparation
tool: inspect a packed dataset (manifest summary, per-partition entry
listings, compressor histogram), verify integrity offline — per-record
payload digests, whole-partition sha256 digests, and full decompression
against stat records — and repair what verification finds:

- ``--verify`` checks everything (``--sample N`` spot-checks the first
  N records instead); the exit code is non-zero while any problem is
  unrepaired, so the command slots into cron/CI as a scrub drill;
- ``--repair`` rebuilds a missing or corrupt ``manifest.json`` from the
  partition files themselves, and — given ``--source DATA_DIR`` —
  re-compresses damaged records from the original files and rewrites
  their partitions;
- ``--ownership FILE`` consumes a runtime ownership map (the JSON from
  ``FanStore.export_ownership()``) so every reported problem names the
  record's *current* home and replicas — after the membership layer
  re-replicates a dead rank's records, offline repair must talk about
  the new owners, not the original layout, or the two repair paths race
  each other.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import Counter
from pathlib import Path
from typing import Sequence

from repro.compressors.registry import default_registry
from repro.errors import FormatError, ManifestError
from repro.fanstore.journal import atomic_open
from repro.fanstore.layout import (
    blob_crc32,
    entry_payload_ok,
    read_partition,
    write_partition,
)
from repro.fanstore.prepare import (
    BROADCAST_NAME,
    PreparedDataset,
    sha256_file,
)
from repro.util.units import format_bytes


def summarize_dataset(root: Path) -> str:
    """Manifest-level summary of a prepared dataset."""
    prepared = PreparedDataset.load(root)
    lines = [
        f"prepared dataset at {root}",
        f"  files:       {prepared.num_files}",
        f"  partitions:  {len(prepared.partitions)}"
        + (" + broadcast" if prepared.broadcast else ""),
        f"  compressor:  {prepared.compressor}",
        f"  original:    {format_bytes(prepared.original_bytes)}",
        f"  packed:      {format_bytes(prepared.compressed_bytes)}",
        f"  ratio:       {prepared.ratio:.2f}x",
    ]
    return "\n".join(lines)


def list_partition(path: Path, *, limit: int | None = None) -> str:
    """Entry listing of one partition file."""
    entries = read_partition(path, with_data=False)
    lines = [f"{path.name}: {len(entries)} entries"]
    registry = default_registry()
    comp_hist: Counter = Counter()
    for e in entries[: limit or len(entries)]:
        comp = registry.get(e.compressor_id).name
        comp_hist[comp] += 1
        lines.append(
            f"  {e.path:<40} {e.stat.st_size:>10} -> "
            f"{e.compressed_size:>10}  [{comp}]"
        )
    if limit is not None and len(entries) > limit:
        lines.append(f"  ... {len(entries) - limit} more")
    return "\n".join(lines)


def load_ownership(path: Path) -> dict:
    """Load an ownership map exported by ``FanStore.export_ownership()``
    (view epoch + per-path home/replica ranks)."""
    with open(path, encoding="utf-8") as fh:
        ownership = json.load(fh)
    if "files" not in ownership:
        raise FormatError(f"{path}: not an ownership export (no 'files' key)")
    return ownership


def _owner_note(path: str, ownership: dict | None) -> str:
    """`` [owner: rank N, replicas ...]`` suffix for problem lines, so
    operators act against the record's current home — which, after a
    re-replication, is not the rank the original layout suggests."""
    if ownership is None:
        return ""
    entry = ownership.get("files", {}).get(path)
    if entry is None:
        return " [owner: unknown to the exported view]"
    replicas = ",".join(str(r) for r in entry.get("replicas", [])) or "none"
    return (
        f" [owner: rank {entry.get('home')}, replicas {replicas}, "
        f"view epoch {ownership.get('epoch', 0)}]"
    )


def verify_dataset(
    root: Path, *, sample: int | None = None, ownership: dict | None = None
) -> tuple[int, list[str]]:
    """Offline integrity check of a prepared dataset.

    Three layers, cheapest problem wins per record: the whole-partition
    sha256 recorded in the manifest (skipped when sampling), the
    per-record payload crc32, and a full decompression against the stat
    record. ``sample`` bounds the number of records checked; an
    ``ownership`` export annotates each per-record problem with its
    current home/replicas.

    Returns ``(verified_count, problems)``.
    """
    prepared = PreparedDataset.load(root)
    registry = default_registry()
    problems: list[str] = []
    verified = 0
    checked = 0
    if sample is None:
        for name in prepared.verify_partition_digests():
            problems.append(f"{name}: partition digest mismatch")
    paths = prepared.partition_paths()
    if prepared.broadcast:
        paths.append(prepared.broadcast_path())
    for ppath in paths:
        if sample is not None and checked >= sample:
            break
        try:
            entries = read_partition(ppath, with_data=True)
        except FormatError as exc:
            problems.append(f"{ppath.name}: unreadable ({exc})")
            continue
        for e in entries:
            if sample is not None and checked >= sample:
                break
            checked += 1
            note = _owner_note(e.path, ownership)
            if not entry_payload_ok(e):
                problems.append(f"{e.path}: payload digest mismatch{note}")
                continue
            try:
                plain = registry.get(e.compressor_id).decompress(e.data)
            except Exception as exc:  # noqa: BLE001 - reported, not raised
                problems.append(f"{e.path}: decompression failed ({exc}){note}")
                continue
            if len(plain) != e.stat.st_size:
                problems.append(
                    f"{e.path}: size mismatch "
                    f"({len(plain)} != {e.stat.st_size}){note}"
                )
            else:
                verified += 1
    return verified, problems


def rebuild_manifest(root: Path) -> PreparedDataset:
    """Reconstruct ``manifest.json`` from the partition files themselves
    (counts, sizes, dominant compressor, fresh digests) — the manifest
    is derived state, so losing it must never lose the dataset."""
    root = Path(root)
    part_names = sorted(p.name for p in root.glob("part-*.fst"))
    if not part_names:
        raise ManifestError(f"{root}: no partition files to rebuild from")
    broadcast = BROADCAST_NAME if (root / BROADCAST_NAME).exists() else None
    registry = default_registry()
    comp_hist: Counter = Counter()
    num_files = original = compressed = 0
    digests: dict[str, str] = {}
    for name in part_names + ([broadcast] if broadcast else []):
        for e in read_partition(root / name, with_data=False):
            comp_hist[registry.get(e.compressor_id).name] += 1
            num_files += 1
            original += e.stat.st_size
            compressed += e.compressed_size
        digests[name] = sha256_file(root / name)
    prepared = PreparedDataset(
        root=root,
        partitions=part_names,
        broadcast=broadcast,
        compressor=comp_hist.most_common(1)[0][0] if comp_hist else "raw",
        num_files=num_files,
        original_bytes=original,
        compressed_bytes=compressed,
        partition_digests=digests,
    )
    prepared.save_manifest()
    return prepared


def repair_dataset(
    root: Path, *, source: Path | None = None, ownership: dict | None = None
) -> tuple[list[str], list[str]]:
    """Repair what offline verification can find.

    Returns ``(repaired, problems)`` — human-readable action lines and
    the damage that remains. A corrupt/missing manifest is rebuilt from
    the partitions; a record whose payload fails its digest (or
    decompression) is re-compressed from ``source`` and its partition
    rewritten; a partition whose sha256 drifted while every record
    verifies (e.g. a flip in dead header padding) is rewritten in
    canonical form. Truncated partitions are unrepairable offline — the
    torn-off records' membership is unknown — and are reported.
    """
    root = Path(root)
    repaired: list[str] = []
    problems: list[str] = []
    registry = default_registry()
    try:
        prepared = PreparedDataset.load(root)
    except (ManifestError, FormatError):
        prepared = rebuild_manifest(root)
        repaired.append("manifest.json: rebuilt from partition files")
    paths = prepared.partition_paths()
    if prepared.broadcast:
        paths.append(prepared.broadcast_path())
    manifest_dirty = False
    for ppath in paths:
        if not ppath.exists():
            problems.append(f"{ppath.name}: missing")
            continue
        try:
            entries = read_partition(ppath, with_data=True)
        except FormatError as exc:
            problems.append(
                f"{ppath.name}: unreadable ({exc}); re-prepare from source"
            )
            continue
        rewrite = False
        fixed: list[tuple[str, int, object, bytes]] = []
        for e in entries:
            data = e.data
            assert data is not None
            bad = not entry_payload_ok(e)
            if not bad:
                try:
                    plain = registry.get(e.compressor_id).decompress(data)
                    bad = len(plain) != e.stat.st_size
                except Exception:  # noqa: BLE001 - becomes a repair target
                    bad = True
            if bad:
                fresh = _recompress(e, source, registry)
                if fresh is None:
                    problems.append(
                        f"{e.path}: unrepaired (no good source)"
                        f"{_owner_note(e.path, ownership)}"
                    )
                else:
                    data = fresh
                    rewrite = True
                    repaired.append(f"{e.path}: re-compressed from source")
            fixed.append((e.path, e.compressor_id, e.stat, data))
        recorded = prepared.partition_digests.get(ppath.name)
        if not rewrite and recorded is not None and sha256_file(ppath) != recorded:
            rewrite = True  # damage confined to dead bytes: canonicalize
            repaired.append(f"{ppath.name}: rewritten in canonical form")
        if rewrite:
            with atomic_open(ppath) as fh:
                write_partition(fixed, fh)  # type: ignore[arg-type]
            prepared.partition_digests[ppath.name] = sha256_file(ppath)
            manifest_dirty = True
    if manifest_dirty:
        prepared.save_manifest()
    return repaired, problems


def _recompress(entry, source: Path | None, registry) -> bytes | None:
    """Re-create one record's compressed payload from the original file;
    None when the source is unavailable or no longer byte-identical."""
    if source is None:
        return None
    original = Path(source) / entry.path
    if not original.is_file():
        return None
    compressor = registry.get(entry.compressor_id)
    packed = compressor.compress(original.read_bytes())
    if entry.stat.has_digest and blob_crc32(packed) != entry.stat.crc32:
        return None  # the source file changed since prepare time
    return packed


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="fanstore-inspect",
        description="Inspect, verify, and repair FanStore prepared datasets.",
    )
    parser.add_argument("root", type=Path, help="prepared dataset directory")
    parser.add_argument(
        "--list", action="store_true", help="list every partition's entries"
    )
    parser.add_argument(
        "--verify", action="store_true",
        help="check digests and decompress everything against stat records",
    )
    parser.add_argument(
        "--sample", type=int, default=None, metavar="N",
        help="with --verify: spot-check only the first N records",
    )
    parser.add_argument(
        "--repair", action="store_true",
        help="rebuild a bad manifest; with --source, re-compress bad records",
    )
    parser.add_argument(
        "--source", type=Path, default=None, metavar="DIR",
        help="original dataset directory to repair payloads from",
    )
    parser.add_argument(
        "--ownership", type=Path, default=None, metavar="FILE",
        help="runtime ownership export (FanStore.export_ownership JSON); "
        "problems are annotated with each record's current home/replicas",
    )
    parser.add_argument("--limit", type=int, default=20,
                        help="max entries listed per partition")
    args = parser.parse_args(argv)

    ownership = None
    if args.ownership is not None:
        try:
            ownership = load_ownership(args.ownership)
        except (OSError, ValueError, FormatError) as exc:
            print(f"PROBLEM: {exc}")
            return 1

    if args.repair:
        repaired, problems = repair_dataset(
            args.root, source=args.source, ownership=ownership
        )
        for r in repaired:
            print(f"REPAIRED: {r}")
        for p in problems:
            print(f"PROBLEM: {p}")

    try:
        print(summarize_dataset(args.root))
    except FormatError as exc:  # ManifestError included
        print(f"PROBLEM: {exc}")
        print("hint: --repair rebuilds the manifest from partition files")
        return 1
    if args.list:
        prepared = PreparedDataset.load(args.root)
        for name in prepared.partitions + (
            [prepared.broadcast] if prepared.broadcast else []
        ):
            print()
            print(list_partition(args.root / name, limit=args.limit))
    if args.verify:
        verified, problems = verify_dataset(
            args.root, sample=args.sample, ownership=ownership
        )
        print(f"\nverified {verified} entries")
        for p in problems:
            print(f"  PROBLEM: {p}")
        if problems:
            return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
