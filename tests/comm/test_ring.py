"""Virtual-ring transfers (§V-D extra-partition replication)."""

from __future__ import annotations

import pytest

from repro.comm.launcher import run_parallel
from repro.comm.ring import ring_exchange, ring_neighbors, ring_replicate


class TestNeighbors:
    def test_interior(self):
        assert ring_neighbors(2, 5) == (1, 3)

    def test_wraparound(self):
        assert ring_neighbors(0, 5) == (4, 1)
        assert ring_neighbors(4, 5) == (3, 0)

    def test_two_ranks_are_mutual_neighbors(self):
        assert ring_neighbors(0, 2) == (1, 1)


class TestExchange:
    def test_one_round_shifts_left_blocks_right(self):
        results = run_parallel(
            lambda c: ring_exchange(c, f"block-{c.rank}", rounds=1, timeout=5),
            4,
            timeout=10,
        )
        # each rank receives its left neighbor's block
        assert results[0] == ["block-3"]
        assert results[1] == ["block-0"]
        assert results[3] == ["block-2"]

    def test_full_rotation_sees_everything(self):
        size = 5

        def body(comm):
            seen = ring_exchange(
                comm, comm.rank, rounds=size - 1, timeout=5
            )
            return sorted(seen + [comm.rank])

        results = run_parallel(body, size, timeout=10)
        assert all(r == list(range(size)) for r in results)


class TestReplicate:
    def test_copies_come_from_left_neighbors(self):
        results = run_parallel(
            lambda c: ring_replicate(c, f"part-{c.rank}", 2, timeout=5),
            4,
            timeout=10,
        )
        assert results[2] == ["part-1", "part-0"]
        assert results[0] == ["part-3", "part-2"]

    def test_zero_copies_is_noop(self):
        results = run_parallel(
            lambda c: ring_replicate(c, "x", 0, timeout=5), 3, timeout=10
        )
        assert results == [[], [], []]

    def test_too_many_copies_rejected(self):
        from repro.comm.launcher import ParallelFailure

        with pytest.raises(ParallelFailure):
            run_parallel(
                lambda c: ring_replicate(c, "x", 3, timeout=5), 3, timeout=10
            )
