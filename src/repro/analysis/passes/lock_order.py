"""*lock-order*: the static half of the lockdep story.

Builds the project-wide lock-acquisition graph (an edge ``A → B`` means
some path acquires lock ``B`` while holding ``A``) from ``with
self._lock:`` regions and the call chains underneath them, then flags:

- any cycle in that graph (two code paths taking the same pair of locks
  in opposite orders can deadlock), and
- re-acquisition of a non-reentrant ``threading.Lock`` already held on
  the same path (guaranteed self-deadlock).

RLock/Condition self-edges are reentrant by construction and are not
reported; cross-lock cycles are reported regardless of kind.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.core import Finding, LintPass, Project
from repro.analysis.locks import AcquireEvent, LockModel


class LockOrderPass(LintPass):
    rule = "lock-order"
    title = "lock-acquisition graph must stay acyclic"

    def run(self, project: Project) -> Iterable[Finding]:
        model = LockModel(project)
        findings: list[Finding] = []
        # representative acquisition event per directed edge
        edges: dict[tuple[str, str], AcquireEvent] = {}
        self_edges: dict[tuple[str, int], AcquireEvent] = {}

        def on_acquire(ev: AcquireEvent) -> None:
            for held in ev.held:
                if held.key == ev.lock.key:
                    if ev.lock.kind == "Lock":
                        line = getattr(ev.node, "lineno", 1)
                        self_edges.setdefault((ev.source.display, line), ev)
                else:
                    edges.setdefault((held.key, ev.lock.key), ev)

        model.walk_all(on_acquire=on_acquire)

        for (path, line), ev in sorted(self_edges.items()):
            findings.append(
                Finding(
                    rule=self.rule,
                    path=path,
                    line=line,
                    message=(
                        f"re-acquires non-reentrant {ev.lock.key} already "
                        f"held on this path (entered via {ev.entry}); "
                        "threading.Lock self-deadlocks"
                    ),
                )
            )

        for cycle in _cycles({k for k in edges}):
            members = set(cycle)
            # anchor the report on some edge inside the cycle
            first = next(
                ev
                for (a, b), ev in sorted(edges.items())
                if a in members and b in members
            )
            chain = " -> ".join(cycle + (cycle[0],))
            findings.append(
                Finding(
                    rule=self.rule,
                    path=first.source.display,
                    line=getattr(first.node, "lineno", 1),
                    message=(
                        f"lock-order cycle {chain}; this acquisition "
                        f"(via {first.entry}) closes it"
                    ),
                )
            )
        return findings


def _cycles(edge_set: set[tuple[str, str]]) -> list[tuple[str, ...]]:
    """Elementary cycles of the edge set, one canonical tuple per
    strongly connected component (enough for reporting: any SCC with an
    internal edge back to its start is a deadlock candidate)."""
    graph: dict[str, set[str]] = {}
    for a, b in edge_set:
        graph.setdefault(a, set()).add(b)
        graph.setdefault(b, set())

    index: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    sccs: list[list[str]] = []
    counter = [0]

    def strongconnect(v: str) -> None:
        # iterative Tarjan to stay safe on deep graphs
        work = [(v, iter(sorted(graph[v])))]
        index[v] = low[v] = counter[0]
        counter[0] += 1
        stack.append(v)
        on_stack.add(v)
        while work:
            node, it = work[-1]
            advanced = False
            for w in it:
                if w not in index:
                    index[w] = low[w] = counter[0]
                    counter[0] += 1
                    stack.append(w)
                    on_stack.add(w)
                    work.append((w, iter(sorted(graph[w]))))
                    advanced = True
                    break
                if w in on_stack:
                    low[node] = min(low[node], index[w])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                comp = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    comp.append(w)
                    if w == node:
                        break
                sccs.append(comp)

    for v in sorted(graph):
        if v not in index:
            strongconnect(v)

    cycles: list[tuple[str, ...]] = []
    for comp in sccs:
        if len(comp) < 2:
            continue
        members = set(comp)
        # order the component along its edges for a readable chain
        start = min(comp)
        ordered = [start]
        seen = {start}
        cur = start
        while True:
            nxt = sorted(
                n for n in graph[cur] if n in members and n not in seen
            )
            if not nxt:
                break
            cur = nxt[0]
            ordered.append(cur)
            seen.add(cur)
        cycles.append(tuple(ordered))
    return cycles
