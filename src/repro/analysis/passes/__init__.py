"""The project-specific lint passes behind ``fanstore-lint``.

Each module contributes one :class:`repro.analysis.core.LintPass`;
:func:`all_passes` is the registry the CLI and ``run_lint`` default to.
The rule catalogue lives in ``docs/static-analysis.md``.
"""

from __future__ import annotations

from repro.analysis.core import LintPass
from repro.analysis.passes.blocking import BlockingUnderLockPass
from repro.analysis.passes.catalogue import MetricCataloguePass
from repro.analysis.passes.deadline import DeadlinePropagationPass
from repro.analysis.passes.deprecation import DeprecatedFacadePass
from repro.analysis.passes.determinism import DeterminismPass
from repro.analysis.passes.durability import DurableWritePass
from repro.analysis.passes.errors import ErrorConventionsPass
from repro.analysis.passes.lock_order import LockOrderPass
from repro.analysis.passes.protocol import ProtocolConformancePass

__all__ = [
    "BlockingUnderLockPass",
    "DeadlinePropagationPass",
    "DeprecatedFacadePass",
    "DeterminismPass",
    "DurableWritePass",
    "ErrorConventionsPass",
    "LockOrderPass",
    "MetricCataloguePass",
    "ProtocolConformancePass",
    "all_passes",
]


def all_passes() -> list[LintPass]:
    return [
        LockOrderPass(),
        BlockingUnderLockPass(),
        ProtocolConformancePass(),
        DeadlinePropagationPass(),
        ErrorConventionsPass(),
        DeterminismPass(),
        DurableWritePass(),
        MetricCataloguePass(),
        DeprecatedFacadePass(),
    ]
