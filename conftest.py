"""Repo-root conftest: activates the lockdep witness for every pytest
run (tier-1, benchmarks, seed matrices). See
``src/repro/analysis/pytest_plugin.py``; disable with
``FANSTORE_LOCKDEP=0``."""

pytest_plugins = ("repro.analysis.pytest_plugin",)
