#!/usr/bin/env python3
"""Characterize a training epoch's I/O, then replay it everywhere.

The Darshan-style workflow the paper's I/O analysis rests on (§II-B):
record every open/read/stat a real training epoch makes against a live
FanStore, summarize the op mix, persist the trace, and replay the
identical workload against the calibrated device models — "what would
this epoch have cost on raw SSD, on FUSE, on Lustre?".

Run: ``python examples/trace_analysis.py``
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.datasets import generate_dataset
from repro.fanstore import FanStore, prepare_dataset
from repro.simnet import (
    IoTrace,
    TraceRecorder,
    fanstore_local,
    fuse_over_ssd,
    lustre,
    replay,
    ssd,
)
from repro.training import SyncLoader, list_training_files


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="trace-analysis-"))
    raw = workdir / "raw"
    generate_dataset("imagenet", raw, num_files=20, avg_file_size=12_288,
                     num_dirs=4, seed=13)
    prepared = prepare_dataset(raw, workdir / "packed", num_partitions=2,
                               compressor="auto", threads=2)

    print("== record one epoch through the live store ==")
    with FanStore(prepared) as fs:
        recorder = TraceRecorder(fs.client)
        # the §II-B startup pattern: enumerate + stat everything …
        for d in recorder.listdir(""):
            for name in recorder.listdir(d):
                recorder.stat(f"{d}/{name}")
        # … then batched epoch reads
        files = list_training_files(fs.client)
        loader = SyncLoader(recorder, files, batch_size=5, epochs=1)
        read_bytes = sum(b.bytes_read for b in loader)
    print(recorder.trace.summary())
    print(f"   epoch payload: {read_bytes} bytes")

    trace_file = workdir / "epoch.jsonl"
    recorder.trace.save(trace_file)
    reloaded = IoTrace.load(trace_file)
    print(f"\n== trace persisted to {trace_file.name} "
          f"({len(reloaded)} events) ==")

    print("\n== replay the identical workload on the device models ==")
    measured = recorder.trace.measured_seconds()
    print(f"   {'device':<22} {'epoch I/O':>12} {'vs measured':>12}")
    print(f"   {'measured (this host)':<22} {measured * 1e3:>9.2f} ms "
          f"{'1.0x':>12}")
    for model in (fanstore_local(), ssd(), fuse_over_ssd(), lustre()):
        t = replay(reloaded, model)
        print(f"   {model.name:<22} {t * 1e3:>9.2f} ms "
              f"{t / measured:>11.1f}x")

    print("\nthe replay is how this repo cross-validates its measured "
          "and modeled halves\n(see benchmarks/bench_trace_crossval.py).")


if __name__ == "__main__":
    main()
