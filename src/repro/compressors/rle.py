"""Byte-level run-length encoding.

The simplest dictionary-free member of the suite: very fast, only
effective on data with long byte runs (sparse scientific arrays,
padded records). Serves as a low-ratio/low-cost point in the Fig. 7
tradeoff space.

Format: ``uvarint(original_len)`` then a sequence of tokens:
``0x00..0x7F n`` → copy the next ``n+1`` literal bytes;
``0x80..0xFF n`` → repeat the next byte ``(n & 0x7F) + 2`` … encoded as
(control, payload) pairs where control's high bit selects run vs literal
and the low 7 bits carry ``count-1`` (literals) or ``count-2`` (runs,
min run length 2). Runs longer than 129 are split.
"""

from __future__ import annotations

import numpy as np

from repro.compressors.base import Codec, read_uvarint, write_uvarint
from repro.errors import CompressionError

_MAX_LIT = 128  # control 0x00..0x7F → 1..128 literals
_MAX_RUN = 129  # control 0x80..0xFF → 2..129 repeats


class RleCodec(Codec):
    """Run-length coder with literal-run escapes."""

    name = "rle"

    def compress(self, data: bytes) -> bytes:
        out = bytearray(write_uvarint(len(data)))
        if not data:
            return bytes(out)
        arr = np.frombuffer(data, dtype=np.uint8)
        # Boundaries of equal-byte runs, vectorized.
        change = np.nonzero(np.diff(arr))[0] + 1
        starts = np.concatenate(([0], change))
        ends = np.concatenate((change, [len(arr)]))
        lit_start = -1  # start of a pending literal stretch

        def flush_literals(upto: int) -> None:
            nonlocal lit_start
            if lit_start < 0:
                return
            pos = lit_start
            while pos < upto:
                n = min(_MAX_LIT, upto - pos)
                out.append(n - 1)
                out.extend(data[pos : pos + n])
                pos += n
            lit_start = -1

        for s, e in zip(starts.tolist(), ends.tolist()):
            run = e - s
            if run >= 2:
                flush_literals(s)
                byte = data[s]
                while run > 0:
                    n = min(_MAX_RUN, run)
                    if n == 1:
                        # A leftover single byte: emit as a literal.
                        out.append(0)
                        out.append(byte)
                    else:
                        out.append(0x80 | (n - 2))
                        out.append(byte)
                    run -= n
            else:
                if lit_start < 0:
                    lit_start = s
        flush_literals(len(data))
        return bytes(out)

    def decompress(self, data: bytes) -> bytes:
        original_len, pos = read_uvarint(data)
        out = bytearray()
        n = len(data)
        while pos < n:
            control = data[pos]
            pos += 1
            if control & 0x80:
                if pos >= n:
                    raise CompressionError("rle: truncated run token")
                out.extend(bytes([data[pos]]) * ((control & 0x7F) + 2))
                pos += 1
            else:
                count = control + 1
                if pos + count > n:
                    raise CompressionError("rle: truncated literal run")
                out.extend(data[pos : pos + count])
                pos += count
        if len(out) != original_len:
            raise CompressionError(
                f"rle: expected {original_len} bytes, decoded {len(out)}"
            )
        return bytes(out)
