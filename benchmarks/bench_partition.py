"""Split-brain economics: what quorum membership and epoch fencing buy.

The same 3-rank store suffers the same 2|1 partition under two
regimes. *Fenced* is the shipped default: quorum-aware convictions
plus epoch fencing on mutations. *Unfenced* turns both off
(``MembershipConfig.quorum=False``, ``DaemonConfig.epoch_fencing=False``)
— the naive detector every rank-death drill before this one assumed.

Four costs are measured per regime:

- **writers electable during the split** — fenced: the minority's
  election returns ``None``, so exactly one component can write;
  unfenced: both components elect one (split brain).
- **re-replication storm** — fenced: only the majority restores the
  cut-off rank's copies; the isolated minority's convictions are
  quorum-denied, so it stages nothing. Unfenced: the minority convicts
  *both* peers and restores the whole namespace onto itself off the
  shared-FS floor, on top of the majority's legitimate repair.
- **the stale write after heal** — fenced: the minority's first
  mutation carries its stale view epoch and is refused loudly
  (``StaleEpochError``); unfenced: the write is *accepted silently* —
  the minority diverted ownership to itself during the split, so the
  bytes land local-only and the record never reaches its metadata
  owner (silent divergence, the worst outcome).
- **reconvergence** — fenced: the rejoin handshake + heal
  anti-entropy reach one epoch-2 all-ALIVE view in bounded time;
  unfenced: both sides hold the other DEAD, heartbeats skip DEAD
  targets, and the views stay wedged forever.

Writes a repo-root ``BENCH_partition.json`` with the measured rows and
gates, alongside the usual ``benchmarks/_results`` report.
"""

from __future__ import annotations

import json
import threading
import time
import zlib
from pathlib import Path

import pytest

from repro.bench.report import PaperComparison
from repro.comm.chaos import ChaosWorld, FaultPlan
from repro.comm.launcher import run_parallel
from repro.datasets.synthetic import generate_dataset
from repro.errors import StaleEpochError
from repro.fanstore.daemon import DaemonConfig
from repro.fanstore.membership import MembershipConfig, RankState
from repro.fanstore.prepare import prepare_dataset
from repro.fanstore.store import FanStore, FanStoreOptions

NODES = 3
MINORITY = 2
CONDUCTOR = 0
SEED = 7

#: tight request budgets so degraded reads settle quickly
CONFIG = dict(
    extra_partition_budget=1,
    request_timeout=0.4,
    max_retries=1,
    retry_backoff_base=0.01,
    retry_backoff_max=0.05,
)

#: fast detector so conviction (or its quorum denial) lands in ~1.5 s;
#: flap_damper gives the rejoined rank post-promotion hysteresis so a
#: scheduling stall on a loaded runner cannot re-convict it mid-repair
TIMING = dict(
    heartbeat_interval=0.05,
    suspect_after=0.3,
    dead_after=1.5,
    isolation_damper=0.2,
    flap_damper=2.0,
)

#: post-conviction settle: long enough for a re-replication wave to
#: finish on either side of the cut
SETTLE_S = 1.5

_TAG_DONE = 0x0D1F
POLL = 0.01

JSON_OUT = Path(__file__).parents[1] / "BENCH_partition.json"


def _rank0_owned(prefix: str) -> str:
    for i in range(1000):
        path = f"out/{prefix}{i}.bin"
        if zlib.crc32(path.encode("utf-8")) % NODES == 0:
            return path
    raise AssertionError("no rank-0-owned path found")


STALE_PATH = _rank0_owned("stale")  # written by the healed-but-stale rank


def _await(predicate, deadline_s, what):
    deadline = time.monotonic() + deadline_s
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(POLL)
    raise AssertionError(f"timed out waiting for {what}")


def _drain(comm):
    others = [r for r in range(NODES) if r != comm.rank]
    for other in others:
        comm.send("done", other, _TAG_DONE)
    for other in others:
        comm.recv(other, _TAG_DONE, timeout=120)


@pytest.fixture(scope="module")
def split_dataset(tmp_path_factory):
    raw = tmp_path_factory.mktemp("split-raw")
    generate_dataset("em", raw, num_files=24, avg_file_size=8_000,
                     num_dirs=3, seed=SEED)
    return prepare_dataset(
        raw, tmp_path_factory.mktemp("split-packed"),
        num_partitions=NODES, compressor="zlib-1", threads=2,
    )


def _run_regime(prepared, *, fenced: bool):
    """One cut → settle → heal → stale write → reconverge pass."""
    mcfg = MembershipConfig(quorum=fenced, **TIMING)
    config = DaemonConfig(epoch_fencing=fenced, **CONFIG)
    plan = FaultPlan(SEED)
    world = ChaosWorld(NODES, plan)

    settled = [threading.Event() for _ in range(NODES)]
    healed = threading.Event()
    stale_done = threading.Event()
    writers: dict[int, int | None] = {}
    shared: dict[str, object] = {}

    def body(comm):
        opts = FanStoreOptions(comm=comm, config=config, membership=mcfg)
        fs = FanStore(prepared, opts)
        det = fs.membership
        stats = fs.daemon.stats

        # warm pass + the expected repair size, before anything breaks
        for rec in fs.daemon.metadata.walk_files():
            fs.client.read_file(rec.path)
        if comm.rank == CONDUCTOR:
            recs = [r for r in fs.daemon.metadata.records()
                    if not r.is_broadcast]
            # copies the majority loses with MINORITY: the files homed
            # on it plus the partition it replicated (rank r holds
            # partition r-1 under extra_partition_budget=1)
            shared["expected_lost"] = (
                sum(1 for r in recs if r.home_rank == MINORITY)
                + sum(1 for r in recs
                      if r.partition_id % NODES == MINORITY - 1)
            )
            # mean compressed record size: staged copies are not
            # individually attributed, so storm bytes are reported as
            # records x mean
            shared["mean_record_bytes"] = (
                sum(r.compressed_size for r in recs) / len(recs)
            )
        comm.barrier()

        if comm.rank == CONDUCTOR:
            cut = plan.partition([0, 1], [MINORITY])
            shared["t_cut"] = time.monotonic()

        if comm.rank == MINORITY:
            if fenced:
                _await(lambda: fs.isolated, 30, "isolation to engage")
                _await(
                    lambda: det.stats.quorum_denied_convictions == 2,
                    10, "both overdue peers to be frozen",
                )
            else:
                # no quorum gate: the minority convicts both peers and
                # re-replicates the lost namespace onto itself
                _await(lambda: det.stats.convictions == 2,
                       30, "the minority to convict both peers")
        else:
            _await(
                lambda: det.view.state(MINORITY) == RankState.DEAD,
                30, "conviction of the cut-off rank",
            )
        time.sleep(SETTLE_S)  # let any re-replication wave finish
        writers[comm.rank] = det.elect_writer()
        settled[comm.rank].set()

        if comm.rank == CONDUCTOR:
            for ev in settled:
                assert ev.wait(60)
            shared["t_heal"] = time.monotonic()
            plan.heal(cut=cut)
            healed.set()

        if comm.rank == MINORITY:
            assert healed.wait(60)
            try:
                fs.client.write_file(STALE_PATH, b"stale" * 10)
                shared["stale_error"] = None
            except StaleEpochError:
                shared["stale_error"] = "StaleEpochError"
            stale_done.set()
            if fenced:
                # the shipped path back: rejoin handshake, snapshot
                # adoption, verified promotion, heal anti-entropy
                snapshot = det.request_join(CONDUCTOR)
                fs.daemon.apply_membership_snapshot(snapshot)
                det.request_promotion(CONDUCTOR)
        else:
            assert stale_done.wait(60)

        if fenced:
            _await(
                lambda: det.view.epoch >= 2 and all(
                    det.view.state(r) == RankState.ALIVE
                    for r in range(NODES)
                ),
                90, "every view to reconverge all-ALIVE post-promotion",
            )
            if comm.rank == CONDUCTOR:
                shared["t_converged"] = time.monotonic()
            if comm.rank == MINORITY:
                _await(lambda: not fs.isolated, 60, "isolation to exit")
                _await(lambda: stats.reconciled_records > 0,
                       60, "heal reconciliation to run")
        else:
            # bounded settle window: heartbeats skip DEAD targets in
            # both directions, so the views stay wedged — measure that
            time.sleep(SETTLE_S)

        result = {
            "rank": comm.rank,
            "epoch": det.view.epoch,
            "states": [det.view.state(r).name for r in range(NODES)],
            "convictions": det.stats.convictions,
            "rereplicated": stats.rereplicated_records,
            "failed": stats.rereplication_failed,
            "mttr_s": stats.mean_time_to_repair,
            "fenced_rejects": stats.fenced_rejects,
            "duplicates_dropped": stats.duplicate_replicas_dropped,
        }
        if comm.rank == CONDUCTOR:
            # did the stale write ever reach its metadata owner?
            result["owner_sees_stale"] = fs.daemon.metadata.exists(
                STALE_PATH
            )
        _drain(comm)
        fs.shutdown()
        return result

    results = run_parallel(body, NODES, world=world, timeout=300)
    by_rank = {r["rank"]: r for r in results}
    converged = (
        len({r["epoch"] for r in results}) == 1
        and all(s == "ALIVE" for r in results for s in r["states"])
    )
    return {
        "expected_lost": shared["expected_lost"],
        "writers_in_split": sorted(
            {w for w in writers.values() if w is not None}
        ),
        "storm_records": sum(r["rereplicated"] for r in results),
        "storm_bytes_approx": round(
            sum(r["rereplicated"] for r in results)
            * shared["mean_record_bytes"]
        ),
        "minority_rereplicated": by_rank[MINORITY]["rereplicated"],
        "repair_mttr_s": max(
            r["mttr_s"] for r in results if r["rank"] != MINORITY
        ),
        "stale_write": shared["stale_error"],
        "owner_sees_stale": by_rank[CONDUCTOR]["owner_sees_stale"],
        "fenced_rejects": sum(r["fenced_rejects"] for r in results),
        "duplicates_dropped": by_rank[MINORITY]["duplicates_dropped"],
        "reconverged": converged,
        "reconverge_s": (
            shared["t_converged"] - shared["t_heal"]
            if "t_converged" in shared else None
        ),
        "final_views": {r["rank"]: r["states"] for r in results},
    }


def test_partition_fencing(benchmark, split_dataset, emit_report):
    def run_all():
        return {
            "fenced (quorum + epochs)": _run_regime(
                split_dataset, fenced=True
            ),
            "unfenced (naive detector)": _run_regime(
                split_dataset, fenced=False
            ),
        }

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    fenced = rows["fenced (quorum + epochs)"]
    naive = rows["unfenced (naive detector)"]

    report = PaperComparison(
        "Split-brain cost of quorum fencing",
        "3 ranks cut 2|1; same fault, detector fenced vs naive",
        columns=["regime", "writers", "storm records", "storm KiB",
                 "repair MTTR ms", "stale write", "reconverged"],
    )
    for name, r in rows.items():
        report.add_row(
            name,
            len(r["writers_in_split"]),
            r["storm_records"],
            round(r["storm_bytes_approx"] / 1024, 1),
            round(r["repair_mttr_s"] * 1e3, 1),
            r["stale_write"] or "accepted silently",
            "yes" if r["reconverged"]
            else "never (views wedged)",
        )
    report.add_note(
        f"fenced: {fenced['storm_records']} records restored "
        f"(exactly the {fenced['expected_lost']} lost copies), stale "
        f"write refused, one view reconverged "
        f"{fenced['reconverge_s']:.2f}s after heal; unfenced: "
        f"{naive['storm_records']} records "
        f"({naive['minority_rereplicated']} of them a minority storm), "
        f"two writers, the stale write silently local-only"
    )
    emit_report(report)

    JSON_OUT.write_text(json.dumps({
        "bench": "partition",
        "ranks": NODES,
        "cut": "2|1",
        "detector": TIMING,
        "regimes": rows,
    }, indent=2) + "\n")

    # one writer, minimal repair, a loud refusal, bounded reconvergence
    assert fenced["writers_in_split"] == [CONDUCTOR]
    assert fenced["storm_records"] == fenced["expected_lost"]
    assert fenced["minority_rereplicated"] == 0
    assert fenced["stale_write"] == "StaleEpochError"
    assert fenced["fenced_rejects"] >= 1
    assert not fenced["owner_sees_stale"]
    assert fenced["reconverged"] and fenced["reconverge_s"] < 30
    # the naive detector: split brain, a storm, silent divergence
    assert len(naive["writers_in_split"]) == 2
    assert naive["minority_rereplicated"] >= 1
    assert naive["storm_records"] > fenced["storm_records"]
    assert naive["stale_write"] is None
    assert not naive["owner_sees_stale"]
    assert not naive["reconverged"]
