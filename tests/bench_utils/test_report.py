"""The paper-vs-measured reporting helpers."""

from __future__ import annotations

import pytest

from repro.bench.report import PaperComparison, ordering_preserved, ratio_check


class TestPaperComparison:
    def test_render_table(self):
        cmp_ = PaperComparison(
            "Table III", "read throughput",
            columns=["size", "paper", "repro"],
        )
        cmp_.add_row("128 KB", 28_248, 27_000.0)
        cmp_.add_row("8 MB", 560, 588.2)
        cmp_.add_note("modeled, calibrated constants")
        out = cmp_.render()
        assert "Table III" in out
        assert "28248" in out or "28,248" in out
        assert "note: modeled" in out

    def test_row_width_checked(self):
        cmp_ = PaperComparison("T", "d", columns=["a", "b"])
        with pytest.raises(ValueError):
            cmp_.add_row(1)

    def test_render_without_columns(self):
        cmp_ = PaperComparison("Fig X", "shape only")
        assert "Fig X" in cmp_.render()


class TestChecks:
    def test_ratio_check(self):
        assert ratio_check(95.0, 100.0, tolerance=0.1)
        assert not ratio_check(80.0, 100.0, tolerance=0.1)
        assert ratio_check(0.0, 0.0, tolerance=0.1)

    def test_ordering_preserved(self):
        assert ordering_preserved([1.0, 3.0, 2.0], [10, 30, 20])
        assert not ordering_preserved([1.0, 3.0, 2.0], [10, 20, 30])
        with pytest.raises(ValueError):
            ordering_preserved([1.0], [1.0, 2.0])
