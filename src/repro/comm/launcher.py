"""SPMD launcher: the in-process analog of ``mpiexec.hydra`` (§V-D).

``run_parallel(fn, size)`` spawns one thread per rank, hands each a
:class:`~repro.comm.communicator.Communicator`, joins them, and either
returns the rank-ordered results or re-raises the first failure (after
closing the world so sibling ranks blocked in recv unwind instead of
hanging).
"""

from __future__ import annotations

import threading
from typing import Any, Callable

from repro.comm.communicator import Communicator, World
from repro.errors import CommError


class ParallelFailure(CommError):
    """One or more ranks raised; carries every rank's exception."""

    def __init__(self, errors: dict[int, BaseException]) -> None:
        self.errors = errors
        first_rank = min(errors)
        super().__init__(
            f"{len(errors)} rank(s) failed; rank {first_rank}: "
            f"{errors[first_rank]!r}"
        )


def run_parallel(
    fn: Callable[..., Any],
    size: int,
    *args: Any,
    timeout: float | None = 120.0,
    world: World | None = None,
) -> list[Any]:
    """Run ``fn(comm, *args)`` on ``size`` ranks; returns results by rank.

    ``fn`` receives its rank's communicator as the first argument. If any
    rank raises, the world is closed (unblocking stragglers) and a
    :class:`ParallelFailure` aggregating the per-rank exceptions is
    raised. ``timeout`` bounds the join of each thread.
    """
    world = world or World(size)
    if world.size != size:
        raise CommError(f"world size {world.size} != requested size {size}")
    results: list[Any] = [None] * size
    errors: dict[int, BaseException] = {}
    errors_lock = threading.Lock()

    def _run(comm: Communicator) -> None:
        try:
            results[comm.rank] = fn(comm, *args)
        except BaseException as exc:  # noqa: BLE001 - collected and re-raised
            with errors_lock:
                errors[comm.rank] = exc
            world.close()

    threads = [
        threading.Thread(
            target=_run, args=(world.comm(r),), name=f"rank-{r}", daemon=True
        )
        for r in range(size)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout)
        if t.is_alive():
            world.close()
            raise CommError(f"{t.name} did not finish within {timeout}s")
    if errors:
        raise ParallelFailure(errors)
    return results
