"""PR 9 concurrency suite: the pipelined scheduler.

Single-flight fetch coalescing (a miss storm runs one failover ladder),
the :meth:`DecompressedCache.get_or_compute` double-decompress fix,
per-destination request batching (parked requests flush as one envelope,
items keep their own deadlines and error isolation), a hedged miss storm
installing exactly one cache entry, and the typed wire envelope with its
legacy-tuple compatibility shim.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.comm.deadline import Deadline
from repro.comm.launcher import run_parallel
from repro.errors import (
    DeadlineExpiredError,
    FanStoreError,
    FileNotFoundInStoreError,
    WireFormatError,
)
from repro.fanstore.cache import DecompressedCache
from repro.fanstore.daemon import DaemonConfig, FanStoreDaemon
from repro.fanstore.layout import FileStat, blob_crc32
from repro.fanstore.metadata import FileRecord
from repro.fanstore.pipeline import PipelineConfig, SingleFlight
from repro.fanstore.wire import (
    EXPIRED,
    FAILED,
    OVERLOAD,
    WIRE_MAGIC,
    WIRE_VERSION,
    Reply,
    Request,
    decode_batch_reply,
    decode_reply,
    decode_request,
    encode_batch_reply,
)


def _record(path: str, payload: bytes, home_rank: int = 0) -> FileRecord:
    # compressor 1 is memcpy: "compressed" and plain bytes coincide, so
    # these records round-trip through the real decompress path
    return FileRecord(
        path=path,
        stat=FileStat(st_size=len(payload)).with_digest(blob_crc32(payload)),
        compressor_id=1,
        compressed_size=len(payload),
        home_rank=home_rank,
        partition_id=0,
    )


#: quick retries but a generous per-attempt budget: the batching tests
#: must never fall back to the classic ladder because of a slow CI box.
CALM = dict(
    request_timeout=2.0,
    max_retries=1,
    retry_backoff_base=0.01,
    retry_backoff_max=0.02,
    retry_jitter=0.0,
)


# -- the typed wire envelope ----------------------------------------------


class TestWireEnvelope:
    def test_v2_round_trip(self):
        req = Request(
            subject="train/x",
            reply_tag=0x1007,
            trace_ctx=("trace", 1),
            deadline=1234.5,
            epoch=3,
            batch=(("fetch", "train/x", None),),
        )
        assert decode_request(req.encode()) == req

    def test_magic_stays_out_of_the_path_value_space(self):
        # normalized paths never contain NULs, so version dispatch can
        # never mistake an envelope for a legacy (subject, ...) tuple
        assert "\x00" in WIRE_MAGIC

    def test_newer_version_decodes_known_prefix(self):
        body = Request(subject="p", reply_tag=1, epoch=2).encode()
        body = (body[0], WIRE_VERSION + 1) + body[2:] + ("future-field",)
        req = decode_request(body)
        assert req.subject == "p"
        assert req.reply_tag == 1
        assert req.epoch == 2

    def test_older_version_rejected(self):
        body = Request(subject="p", reply_tag=1).encode()
        with pytest.raises(WireFormatError):
            decode_request((body[0], WIRE_VERSION - 1) + body[2:])

    def test_truncated_envelope_rejected(self):
        body = Request(subject="p", reply_tag=1).encode()
        with pytest.raises(WireFormatError):
            decode_request(body[:6])

    @pytest.mark.parametrize(
        "field,value",
        [
            ("reply_tag", -1),
            ("reply_tag", True),
            ("reply_tag", "seven"),
            ("epoch", "stale"),
            ("epoch", True),
            ("batch", ["not", "a", "tuple"]),
        ],
    )
    def test_hostile_fields_rejected(self, field, value):
        body = list(Request(subject="p", reply_tag=7).encode())
        body[{"reply_tag": 3, "epoch": 6, "batch": 7}[field]] = value
        with pytest.raises(WireFormatError):
            decode_request(tuple(body))

    def test_replies_stay_legacy_shaped(self):
        assert Reply(Reply.OK, b"d").encode() == (True, b"d")
        assert Reply(Reply.MISS, "p").encode() == (False, "p")
        assert Reply(Reply.OVERLOAD, 0.5).encode() == (OVERLOAD, 0.5)
        assert Reply(Reply.EXPIRED, "p").encode() == (EXPIRED, "p")
        assert Reply(Reply.FAILED, "p").encode() == (FAILED, "p")

    def test_reply_round_trip_and_unknown_marker(self):
        for reply in (
            Reply(Reply.OK, b"x"),
            Reply(Reply.MISS, None),
            Reply(Reply.EXPIRED, "p"),
        ):
            assert decode_reply(reply.encode()) == reply
        with pytest.raises(WireFormatError):
            decode_reply(("__mystery__", None))

    def test_batch_reply_round_trip(self):
        replies = [
            Reply(Reply.OK, b"a"),
            Reply(Reply.FAILED, "p"),
            Reply(Reply.MISS, "q"),
        ]
        assert decode_batch_reply(encode_batch_reply(replies)) == replies

    def test_non_batch_reply_decodes_to_none(self):
        assert decode_batch_reply((True, b"payload")) is None
        assert decode_batch_reply((OVERLOAD, 0.1)) is None


class TestLegacyShim:
    def test_two_tuple_round_trips(self):
        with pytest.warns(DeprecationWarning):
            req = decode_request(("train/x", 9))
        assert req == Request(subject="train/x", reply_tag=9)

    def test_three_four_five_tuples_round_trip(self):
        with pytest.warns(DeprecationWarning):
            r3 = decode_request(("p", 9, ("ctx",)))
        assert r3.trace_ctx == ("ctx",)
        assert r3.deadline is None
        with pytest.warns(DeprecationWarning):
            r4 = decode_request(("p", 9, None, 55.0))
        assert r4.deadline == 55.0
        assert r4.epoch is None
        with pytest.warns(DeprecationWarning):
            r5 = decode_request(("p", 9, None, 55.0, 4))
        assert r5.epoch == 4
        assert r5.batch is None

    def test_oversized_legacy_tuple_rejected(self):
        with pytest.warns(DeprecationWarning), pytest.raises(WireFormatError):
            decode_request(("p", 9, None, None, 1, "extra"))

    def test_unparseable_body_rejected(self):
        with pytest.warns(DeprecationWarning), pytest.raises(WireFormatError):
            decode_request(12345)

    def test_bogus_legacy_deadline_sanitized(self):
        with pytest.warns(DeprecationWarning):
            req = decode_request(("p", 9, None, "soon"))
        assert req.deadline is None


# -- the single-flight primitive ------------------------------------------


class TestSingleFlightPrimitive:
    def test_followers_share_one_execution(self):
        flight = SingleFlight()
        entered = threading.Event()
        release = threading.Event()
        runs = []

        def work():
            runs.append(1)
            entered.set()
            assert release.wait(10)
            return "value"

        out = []
        lead = threading.Thread(target=lambda: out.append(flight.run("k", work)))
        lead.start()
        assert entered.wait(10)
        follow = threading.Thread(
            target=lambda: out.append(flight.run("k", lambda: "other"))
        )
        follow.start()
        time.sleep(0.1)
        release.set()
        lead.join(10)
        follow.join(10)
        assert len(runs) == 1
        assert sorted(out) == [("value", False), ("value", True)]

    def test_follower_timeout_is_bare_timeout_error(self):
        flight = SingleFlight()
        release = threading.Event()
        lead = threading.Thread(
            target=lambda: flight.run("k", lambda: release.wait(10))
        )
        lead.start()
        stop_at = time.monotonic() + 5
        while not flight._flights:
            assert time.monotonic() < stop_at
            time.sleep(0.001)
        with pytest.raises(TimeoutError):
            flight.run("k", lambda: None, timeout=0.05)
        release.set()
        lead.join(10)

    def test_fresh_flight_after_completion(self):
        flight = SingleFlight()
        assert flight.run("k", lambda: 1) == (1, True)
        assert flight.run("k", lambda: 2) == (2, True)


# -- fetch coalescing through the daemon ----------------------------------


class TestFetchCoalescing:
    def test_miss_storm_runs_one_ladder(self):
        daemon = FanStoreDaemon()
        calls = []
        entered = threading.Event()
        release = threading.Event()

        def ladder(norm, deadline=None):
            calls.append(norm)
            entered.set()
            assert release.wait(10)
            return b"compressed"

        daemon._fetch_ladder = ladder
        n = 8
        start = threading.Barrier(n)
        results: list[bytes] = []
        errors: list[Exception] = []

        def worker():
            start.wait(10)
            try:
                results.append(daemon.fetch_compressed("train/x"))
            except Exception as exc:  # pragma: no cover - fails the test
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(n)]
        for t in threads:
            t.start()
        assert entered.wait(10)
        time.sleep(0.25)  # let every follower park on the flight
        release.set()
        for t in threads:
            t.join(10)
        assert not errors, errors
        assert calls == ["train/x"]  # exactly one upstream fetch
        assert results == [b"compressed"] * n
        assert daemon.metrics.get("daemon.pipeline.coalesced_fetches").value == n - 1

    def test_coalesce_off_runs_every_ladder(self):
        # coalesce=False is the pre-pipelining contract: every caller
        # runs its own ladder with fully independent errors
        daemon = FanStoreDaemon(
            config=DaemonConfig(pipeline=PipelineConfig(coalesce=False))
        )
        calls = []
        gate = threading.Barrier(4)

        def ladder(norm, deadline=None):
            gate.wait(10)  # hold every ladder open concurrently
            calls.append(norm)
            return b"compressed"

        daemon._fetch_ladder = ladder
        start = threading.Barrier(4)
        results: list[bytes] = []

        def worker():
            start.wait(10)
            results.append(daemon.fetch_compressed("train/x"))

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(10)
        assert calls == ["train/x"] * 4  # no sharing at all
        assert results == [b"compressed"] * 4
        assert daemon.metrics.get("daemon.pipeline.coalesced_fetches").value == 0

    def test_follower_deadline_aborts_alone(self):
        daemon = FanStoreDaemon()
        entered = threading.Event()
        release = threading.Event()

        def ladder(norm, deadline=None):
            entered.set()
            assert release.wait(10)
            return b"payload"

        daemon._fetch_ladder = ladder
        out = {}
        lead = threading.Thread(
            target=lambda: out.setdefault("v", daemon.fetch_compressed("t/x"))
        )
        lead.start()
        assert entered.wait(10)
        before = daemon.stats.deadline_aborts
        with pytest.raises(DeadlineExpiredError):
            daemon.fetch_compressed("t/x", deadline=Deadline.after(0.05))
        assert daemon.stats.deadline_aborts == before + 1
        release.set()
        lead.join(10)
        assert out["v"] == b"payload"  # the flight ran on unharmed

    def test_leader_error_shared_with_followers(self):
        daemon = FanStoreDaemon()
        entered = threading.Event()
        release = threading.Event()

        def ladder(norm, deadline=None):
            entered.set()
            assert release.wait(10)
            raise FileNotFoundInStoreError(norm)

        daemon._fetch_ladder = ladder
        errors: list[Exception] = []

        def worker():
            try:
                daemon.fetch_compressed("t/y")
            except FileNotFoundInStoreError as exc:
                errors.append(exc)

        lead = threading.Thread(target=worker)
        lead.start()
        assert entered.wait(10)
        follow = threading.Thread(target=worker)
        follow.start()
        time.sleep(0.1)
        release.set()
        lead.join(10)
        follow.join(10)
        assert len(errors) == 2
        assert errors[0] is errors[1]  # shared instance, by contract


# -- the cache double-decompress fix --------------------------------------


class TestCacheGetOrCompute:
    def test_miss_storm_decompresses_once(self):
        cache = DecompressedCache(1 << 20)
        runs = []
        entered = threading.Event()
        release = threading.Event()

        def factory():
            runs.append(1)
            entered.set()
            assert release.wait(10)
            return b"plain-bytes"

        n = 6
        start = threading.Barrier(n)
        got: list[bytes] = []

        def worker():
            start.wait(10)
            got.append(cache.get_or_compute("d/x", factory))

        threads = [threading.Thread(target=worker) for _ in range(n)]
        for t in threads:
            t.start()
        assert entered.wait(10)
        time.sleep(0.2)
        release.set()
        for t in threads:
            t.join(10)
        assert len(runs) == 1  # the race used to decompress N times
        assert got == [b"plain-bytes"] * n
        assert cache.refcount("d/x") == n  # every waiter holds its own pin
        assert cache.stats.singleflight_leaders == 1
        # every non-leader scores exactly one hit: followers on their
        # post-flight reopen, late arrivals on their first open
        assert cache.stats.hits == n - 1
        assert cache.stats.misses == 1 + cache.stats.singleflight_followers

    def test_leader_failure_shared_then_fresh_flight(self):
        cache = DecompressedCache(1 << 20)
        boom = FanStoreError("decompress failed")
        entered = threading.Event()
        release = threading.Event()

        def failing():
            entered.set()
            assert release.wait(10)
            raise boom

        errors: list[Exception] = []

        def worker():
            try:
                cache.get_or_compute("d/y", failing)
            except FanStoreError as exc:
                errors.append(exc)

        lead = threading.Thread(target=worker)
        lead.start()
        assert entered.wait(10)
        follow = threading.Thread(target=worker)
        follow.start()
        time.sleep(0.1)
        release.set()
        lead.join(10)
        follow.join(10)
        assert errors == [boom, boom]  # one failure, shared
        # the failed flight left the table: the next caller leads anew
        assert cache.get_or_compute("d/y", lambda: b"ok") == b"ok"
        # only the successful round installs (and counts) a leader
        assert cache.stats.singleflight_leaders == 1


# -- server-side batch items ----------------------------------------------


class TestServeBatchItems:
    def _daemon(self, payload: bytes = b"batch-payload"):
        daemon = FanStoreDaemon()
        daemon.metadata.insert(_record("data/good", payload))
        daemon.backend.put("data/good", payload)
        return daemon, payload

    def test_live_fetch_and_stat_items_served(self):
        daemon, payload = self._daemon()
        fetched = daemon._serve_batch_item(("fetch", "data/good", None))
        assert fetched.status == Reply.OK
        assert bytes(fetched.value) == payload
        stat = daemon._serve_batch_item(("stat", "data/good", None))
        assert stat.status == Reply.OK
        assert stat.value.path == "data/good"

    def test_expired_item_dropped_not_served(self):
        daemon, _ = self._daemon()
        reply = daemon._serve_batch_item(
            ("fetch", "data/good", time.monotonic() - 1.0)
        )
        assert reply.status == Reply.EXPIRED
        assert daemon.stats.deadline_expired_drops == 1
        # a live deadline still serves
        live = daemon._serve_batch_item(
            ("fetch", "data/good", time.monotonic() + 30.0)
        )
        assert live.status == Reply.OK

    def test_missing_paths_answer_miss(self):
        daemon, _ = self._daemon()
        assert daemon._serve_batch_item(
            ("fetch", "data/absent", None)
        ).status == Reply.MISS
        assert daemon._serve_batch_item(
            ("stat", "data/absent", None)
        ).status == Reply.MISS

    def test_poisoned_item_fails_alone(self):
        daemon, payload = self._daemon()
        batch = [
            ("fetch", 12345, None),  # poisoned: subject is not a path
            ("fetch", "data/good", None),
            ("fetch",),  # malformed: not an item triple
        ]
        replies = [daemon._serve_batch_item(item) for item in batch]
        assert [r.status for r in replies] == [
            Reply.FAILED,
            Reply.OK,
            Reply.FAILED,
        ]
        assert bytes(replies[1].value) == payload
        assert daemon.stats.malformed_requests == 2

    def test_mutating_kinds_never_batch(self):
        daemon, _ = self._daemon()
        reply = daemon._serve_batch_item(
            ("write_meta", _record("data/new", b"x"), None)
        )
        assert reply.status == Reply.FAILED
        assert daemon.stats.malformed_requests == 1


# -- client-side batching, end to end -------------------------------------


PAYLOADS = {f"train/f{i}": b"payload-%d" % i * 4 for i in range(3)}


def _park_all(daemon, batcher, jobs):
    """Start one thread per job while the baton is held (so every
    request parks), wait until all are parked, then hand the baton over
    to elect a flush leader."""
    results: dict[str, tuple] = {}
    errors: list[Exception] = []

    def worker(name, kind, subject):
        try:
            results[name] = daemon._batched_request(
                kind, subject, 1, deadline=Deadline.after(10)
            )
        except Exception as exc:  # pragma: no cover - fails the test
            errors.append(exc)

    threads = [
        threading.Thread(target=worker, args=(name, kind, subject))
        for name, (kind, subject) in jobs.items()
    ]
    for t in threads:
        t.start()
    stop_at = time.monotonic() + 5
    while len(batcher.pending) < len(jobs):
        assert time.monotonic() < stop_at, "tickets never parked"
        time.sleep(0.005)
    daemon._pass_baton(batcher)  # elect a flush leader
    for t in threads:
        t.join(15)
    return results, errors


class TestBatchedRequests:
    def test_parked_requests_flush_as_one_envelope(self):
        def body(comm):
            daemon = FanStoreDaemon(comm, config=DaemonConfig(**CALM))
            if comm.rank == 1:
                for path, blob in PAYLOADS.items():
                    daemon.metadata.insert(_record(path, blob, home_rank=1))
                    daemon.backend.put(path, blob)
                daemon.start()
                comm.barrier(timeout=30)
                daemon.stop()
                return daemon.metrics.get("daemon.batch.served").value
            batcher = daemon._batcher(1)
            with batcher.lock:
                batcher.busy = True  # hold the baton: callers must park
            jobs = {p: ("fetch", p) for p in PAYLOADS}
            results, errors = _park_all(daemon, batcher, jobs)
            comm.barrier(timeout=30)
            assert not errors, errors
            return (
                results,
                daemon.metrics.get("daemon.batch.flushes").value,
                daemon.metrics.get("daemon.batch.items").value,
            )

        out = run_parallel(body, 2, timeout=60)
        results, flushes, items = out[0]
        for path, blob in PAYLOADS.items():
            ok, data = results[path]
            assert ok is True
            assert bytes(data) == blob
        assert flushes == 1  # one envelope carried all three requests
        assert items == len(PAYLOADS)
        assert out[1] == 1  # the server saw exactly one batched envelope

    def test_one_flush_mixes_kinds_and_isolates_misses(self):
        good = "train/f0"
        blob = PAYLOADS[good]

        def body(comm):
            daemon = FanStoreDaemon(comm, config=DaemonConfig(**CALM))
            if comm.rank == 1:
                daemon.metadata.insert(_record(good, blob, home_rank=1))
                daemon.backend.put(good, blob)
                daemon.start()
                comm.barrier(timeout=30)
                daemon.stop()
                return None
            batcher = daemon._batcher(1)
            with batcher.lock:
                batcher.busy = True
            jobs = {
                "fetch-hit": ("fetch", good),
                "fetch-miss": ("fetch", "train/absent"),
                "stat-hit": ("stat", good),
            }
            results, errors = _park_all(daemon, batcher, jobs)
            comm.barrier(timeout=30)
            assert not errors, errors
            return results, daemon.metrics.get("daemon.batch.flushes").value

        results, flushes = run_parallel(body, 2, timeout=60)[0]
        ok, data = results["fetch-hit"]
        assert ok is True
        assert bytes(data) == blob
        ok, _ = results["fetch-miss"]
        assert ok is False  # the miss hurt only its own waiter
        ok, rec = results["stat-hit"]
        assert ok is True
        assert rec.path == good
        assert flushes == 1

    def test_parked_ticket_deadline_aborts_alone(self):
        def body(comm):
            if comm.rank == 1:
                comm.barrier(timeout=30)
                return None
            daemon = FanStoreDaemon(comm, config=DaemonConfig(**CALM))
            batcher = daemon._batcher(1)
            with batcher.lock:
                batcher.busy = True  # baton never returns in time
            caught: list[Exception] = []

            def worker():
                try:
                    daemon._batched_request(
                        "fetch", "p", 1, deadline=Deadline.after(0.05)
                    )
                except DeadlineExpiredError as exc:
                    caught.append(exc)

            t = threading.Thread(target=worker)
            t.start()
            t.join(10)
            aborts = daemon.stats.deadline_aborts
            daemon._pass_baton(batcher)  # must skip the cancelled ticket
            with batcher.lock:
                busy = batcher.busy
            comm.barrier(timeout=30)
            return len(caught), aborts, busy

        n_caught, aborts, busy = run_parallel(body, 2, timeout=60)[0]
        assert n_caught == 1
        assert aborts == 1
        assert busy is False  # the baton retired cleanly


# -- hedged reads through the single-flight layer -------------------------


class TestHedgedMissStorm:
    def test_hedged_miss_storm_installs_once(self):
        path = "train/hedged"
        blob = b"hedged-payload" * 8

        def body(comm):
            cfg = DaemonConfig(hedge_reads=True, hedge_after_s=0.001, **CALM)
            daemon = FanStoreDaemon(comm, config=cfg)
            daemon.metadata.insert(_record(path, blob, home_rank=1))
            daemon.metadata.add_replica(path, 2)
            if comm.rank != 0:
                daemon.backend.put(path, blob)
                daemon.start()
                comm.barrier(timeout=60)
                daemon.stop()
                return None
            n = 6
            start = threading.Barrier(n)
            got: list[bytes] = []
            errors: list[Exception] = []

            def worker():
                start.wait(10)
                try:
                    got.append(daemon.open_file(path))
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)

            threads = [threading.Thread(target=worker) for _ in range(n)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(30)
            comm.barrier(timeout=60)
            assert not errors, errors
            for _ in got:
                daemon.close_file(path)
            return (
                [bytes(b) for b in got],
                daemon.stats.remote_fetches,
                daemon.stats.decompressions,
                daemon.cache.stats.singleflight_leaders,
                daemon.cache.stats.hits,
            )

        out = run_parallel(body, 3, timeout=90)
        blobs, remote_fetches, decompressions, leaders, hits = out[0]
        assert blobs == [blob] * 6
        assert remote_fetches == 1  # the storm left the rank exactly once
        assert decompressions == 1  # and decompressed exactly once
        assert leaders == 1  # one cache install
        assert hits == 5  # everyone else shared it


# -- the knob group -------------------------------------------------------


class TestPipelineKnobs:
    def test_defaults_form_a_coherent_group(self):
        cfg = DaemonConfig()
        assert cfg.pipeline.pipeline_workers == 4
        assert cfg.pipeline.max_inflight == 32
        assert cfg.pipeline.batch_max == 16
        assert cfg.pipeline.batch_linger == 0.0  # opportunistic batching
        assert cfg.pipeline.coalesce is True

    @pytest.mark.parametrize(
        "bad",
        [
            dict(pipeline_workers=-1),
            dict(max_inflight=0),
            dict(batch_max=0),
            dict(batch_linger=-0.1),
        ],
    )
    def test_validation_rejects_nonsense(self, bad):
        with pytest.raises(FanStoreError):
            PipelineConfig(**bad)

    def test_legacy_kwargs_deprecated_but_honoured(self):
        with pytest.warns(DeprecationWarning):
            daemon = FanStoreDaemon(pipeline_workers=0, batch_max=1)
        assert daemon.config.pipeline.pipeline_workers == 0
        assert daemon.config.pipeline.batch_max == 1
        assert daemon.config.pipeline.max_inflight == 32  # untouched default

    def test_unknown_kwarg_rejected(self):
        with pytest.raises(TypeError):
            FanStoreDaemon(bogus_knob=1)
