"""Selection envelope sweeps and crossover location."""

from __future__ import annotations

import pytest

from repro.errors import SelectionError
from repro.selection.cases import frnn_cpu, srgan_v100
from repro.selection.model import CompressorCandidate, SelectionInputs, IoPerformance
from repro.selection.sweep import crossover_t_iter, sweep_t_iter, winner_map
from repro.util.units import MB


def async_inputs(**overrides):
    defaults = dict(
        io_mode="async",
        c_batch=128,
        s_batch_uncompressed=128 * MB,
        perf_uncompressed=IoPerformance(tpt_read=2000, bdw_read=2000 * MB),
        perf_compressed=IoPerformance(tpt_read=2000, bdw_read=2000 * MB),
        t_iter=1.0,
        parallelism=2,
    )
    defaults.update(overrides)
    return SelectionInputs(**defaults)


CANDS = [
    CompressorCandidate("fast", ratio=1.8, decompress_cost=200e-6),
    CompressorCandidate("dense", ratio=4.0, decompress_cost=5e-3),
]


class TestSweep:
    def test_budget_monotone_along_t_iter(self):
        points = sweep_t_iter(async_inputs(), CANDS, [0.1, 0.5, 2.0, 10.0])
        budgets = [p.budget_per_file for p in points]
        assert budgets == sorted(budgets)

    def test_winner_shifts_from_fast_to_dense(self):
        """Short iterations only admit the fast codec; long ones let the
        dense one qualify and win on ratio — the §VI tradeoff as a curve."""
        points = sweep_t_iter(
            async_inputs(), CANDS, [0.02, 0.1, 1.0, 10.0]
        )
        winners = [p.winner for p in points]
        assert winners[0] == "fast"
        assert winners[-1] == "dense"
        # once dense wins, it keeps winning (monotone boundary)
        first_dense = winners.index("dense")
        assert all(w == "dense" for w in winners[first_dense:])

    def test_empty_sweep_rejected(self):
        with pytest.raises(SelectionError):
            sweep_t_iter(async_inputs(), CANDS, [])

    def test_winner_map_partitions_the_range(self):
        t_iters = [0.02, 0.1, 1.0, 10.0]
        regions = winner_map(async_inputs(), CANDS, t_iters)
        flattened = sorted(t for ts in regions.values() for t in ts)
        assert flattened == sorted(t_iters)


class TestCrossover:
    def test_bisection_finds_boundary(self):
        base = async_inputs()
        boundary = crossover_t_iter(base, CANDS, lo=1e-3, hi=50.0)
        assert boundary is not None
        # qualification flips across the boundary
        import dataclasses

        from repro.selection.model import CompressorSelector

        below = CompressorSelector(
            dataclasses.replace(base, t_iter=boundary * 0.9)
        ).select(CANDS)
        above = CompressorSelector(
            dataclasses.replace(base, t_iter=boundary * 1.1)
        ).select(CANDS)
        assert above.selected is not None
        # below may still have the fast candidate; the boundary is for
        # *some* strict winner — verify consistency instead of absence
        if below.selected is not None:
            assert below.selected.decompress_cost <= above.selected.decompress_cost

    def test_none_when_nothing_ever_qualifies(self):
        impossible = [
            CompressorCandidate("glacial", ratio=10.0, decompress_cost=10.0)
        ]
        assert crossover_t_iter(
            async_inputs(), impossible, hi=2.0
        ) is None

    def test_sync_inputs_rejected(self):
        sync = frnn_cpu().inputs
        sync = __import__("dataclasses").replace(sync, io_mode="sync")
        with pytest.raises(SelectionError):
            crossover_t_iter(sync, CANDS)


class TestPaperCaseEnvelopes:
    def test_frnn_easily_inside_envelope(self):
        """FRNN's 655 ms iteration is far above the qualification
        boundary for its candidates — consistent with §VII-E2 where
        everything qualifies."""
        case = frnn_cpu()
        boundary = crossover_t_iter(case.inputs, case.candidates(), hi=10.0)
        assert boundary is not None
        assert boundary < case.inputs.t_iter

    def test_v100_sync_budget_is_t_iter_independent(self):
        """Equation 1 has no T_iter term: slowing SRGAN down does NOT
        rescue a sync-I/O compressor — the budget comes only from read
        savings. (The paper's fix for V100 is the §VII-E3 fallback or
        switching to async I/O, which its discussion suggests.)"""
        case = srgan_v100()
        points = sweep_t_iter(
            case.inputs, case.candidates(), [case.inputs.t_iter, 30.0, 120.0]
        )
        assert all(p.strict is False for p in points)
        budgets = {round(p.budget_per_file, 12) for p in points}
        assert len(budgets) == 1  # constant in T_iter

    def test_v100_async_would_rescue_lz4hc(self):
        """The paper's own suggestion ("another approach … would be to
        implement asynchronous I/O"): switching the V100 case to Eq. 2
        admits lz4hc strictly."""
        import dataclasses

        from repro.selection.model import CompressorSelector

        case = srgan_v100()
        async_inputs_ = dataclasses.replace(case.inputs, io_mode="async")
        result = CompressorSelector(async_inputs_).select(case.candidates())
        assert result.selected is not None
        assert result.selected.ratio >= 2.0
