"""Numpy models: gradient correctness (numerical checks), parameter
plumbing, training dynamics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ReproError
from repro.training.models import (
    LSTMClassifier,
    MLP,
    flatten,
    softmax_cross_entropy,
    unflatten_into,
)


def numerical_gradient(fn, params, eps=1e-6):
    grad = np.zeros_like(params)
    for i in range(params.size):
        params[i] += eps
        hi = fn()
        params[i] -= 2 * eps
        lo = fn()
        params[i] += eps
        grad[i] = (hi - lo) / (2 * eps)
    return grad


class TestSoftmaxCrossEntropy:
    def test_uniform_logits_loss(self):
        logits = np.zeros((4, 3))
        labels = np.array([0, 1, 2, 0])
        loss, grad = softmax_cross_entropy(logits, labels)
        assert loss == pytest.approx(np.log(3.0))
        assert grad.shape == (4, 3)

    def test_gradient_sums_to_zero_per_row(self):
        rng = np.random.default_rng(0)
        logits = rng.standard_normal((5, 4))
        _, grad = softmax_cross_entropy(logits, np.array([0, 1, 2, 3, 0]))
        np.testing.assert_allclose(grad.sum(axis=1), 0.0, atol=1e-12)

    def test_rejects_bad_shape(self):
        with pytest.raises(ReproError):
            softmax_cross_entropy(np.zeros(3), np.array([0]))


class TestMLPGradients:
    def test_matches_numerical_gradient(self):
        rng = np.random.default_rng(1)
        model = MLP([5, 7, 3], seed=2)
        x = rng.standard_normal((6, 5))
        labels = rng.integers(0, 3, 6)
        _, analytic = model.loss_and_gradients(x, labels)

        flat = model.get_flat_params()

        def loss_at():
            model.set_flat_params(flat)
            logits = model.forward(x)
            loss, _ = softmax_cross_entropy(logits, labels)
            return loss

        numeric = numerical_gradient(loss_at, flat)
        model.set_flat_params(flat)
        np.testing.assert_allclose(analytic, numeric, rtol=1e-4, atol=1e-6)

    def test_training_reduces_loss(self):
        rng = np.random.default_rng(3)
        model = MLP([4, 16, 2], seed=0)
        x = rng.standard_normal((64, 4))
        labels = (x[:, 0] > 0).astype(int)
        first_loss, _ = model.loss_and_gradients(x, labels)
        for _ in range(60):
            _, g = model.loss_and_gradients(x, labels)
            model.apply_gradients(g, lr=0.3)
        final_loss, _ = model.loss_and_gradients(x, labels)
        assert final_loss < first_loss * 0.5

    def test_param_roundtrip(self):
        model = MLP([3, 4, 2], seed=1)
        flat = model.get_flat_params()
        assert flat.size == model.num_params == 3 * 4 + 4 + 4 * 2 + 2
        model.apply_gradients(np.ones_like(flat), lr=0.1)
        assert not np.allclose(model.get_flat_params(), flat)
        model.set_flat_params(flat)
        np.testing.assert_array_equal(model.get_flat_params(), flat)

    def test_needs_two_layers(self):
        with pytest.raises(ReproError):
            MLP([5])


class TestLSTMGradients:
    def test_matches_numerical_gradient(self):
        rng = np.random.default_rng(4)
        model = LSTMClassifier(3, 5, 2, seed=7)
        x = rng.standard_normal((4, 6, 3))
        labels = rng.integers(0, 2, 4)
        _, analytic = model.loss_and_gradients(x, labels)

        flat = model.get_flat_params()

        def loss_at():
            model.set_flat_params(flat)
            logits = model.forward(x)
            loss, _ = softmax_cross_entropy(logits, labels)
            return loss

        numeric = numerical_gradient(loss_at, flat)
        model.set_flat_params(flat)
        np.testing.assert_allclose(analytic, numeric, rtol=2e-4, atol=1e-6)

    def test_learns_sequence_rule(self):
        """Classify by the sign of the summed first feature — learnable
        by a tiny LSTM in a few dozen steps."""
        rng = np.random.default_rng(5)
        model = LSTMClassifier(2, 8, 2, seed=1)
        x = rng.standard_normal((64, 5, 2))
        labels = (x[:, :, 0].sum(axis=1) > 0).astype(int)
        losses = []
        for _ in range(80):
            loss, g = model.loss_and_gradients(x, labels)
            model.apply_gradients(g, lr=0.2)
            losses.append(loss)
        assert losses[-1] < losses[0] * 0.6

    def test_rejects_bad_input_shape(self):
        model = LSTMClassifier(3, 4, 2)
        with pytest.raises(ReproError):
            model.forward(np.zeros((2, 5, 99)))

    def test_forget_gate_bias_initialized_to_one(self):
        model = LSTMClassifier(2, 4, 2)
        np.testing.assert_array_equal(model.b_gates[4:8], 1.0)


class TestFlattenHelpers:
    def test_flatten_unflatten_roundtrip(self):
        rng = np.random.default_rng(6)
        arrays = [rng.standard_normal(s) for s in [(2, 3), (3,), (4, 1)]]
        flat = flatten(arrays)
        targets = [np.zeros_like(a) for a in arrays]
        unflatten_into(flat, targets)
        for a, t in zip(arrays, targets):
            np.testing.assert_array_equal(a, t)

    def test_size_mismatch_raises(self):
        with pytest.raises(ReproError):
            unflatten_into(np.zeros(5), [np.zeros((2, 2))])
