"""LZW dictionary coder (the TIFF/GIF algorithm; paper §II-C cites LZW).

Variable-width codes from 9 bits, growing to ``max_bits`` then resetting
the dictionary (the classic "clear code" strategy), which bounds memory
and adapts to shifting statistics.

Format: ``uvarint(original_len)`` followed by the packed code stream.
Code 256 is CLEAR, 257 is END; entries start at 258.
"""

from __future__ import annotations

from repro.compressors.base import Codec, read_uvarint, write_uvarint
from repro.errors import CompressionError

_CLEAR = 256
_END = 257
_FIRST = 258


class LzwCodec(Codec):
    """LZW with variable-width codes and dictionary reset."""

    def __init__(self, max_bits: int = 14) -> None:
        if not 10 <= max_bits <= 20:
            raise ValueError(f"max_bits must be in [10, 20], got {max_bits}")
        self.max_bits = max_bits
        self.name = f"lzw-{max_bits}"

    def compress(self, data: bytes) -> bytes:
        out = bytearray(write_uvarint(len(data)))
        bitbuf = 0
        bitcount = 0
        width = 9
        max_code = (1 << self.max_bits) - 1

        def emit(code: int) -> None:
            nonlocal bitbuf, bitcount
            bitbuf |= code << bitcount
            bitcount += width
            while bitcount >= 8:
                out.append(bitbuf & 0xFF)
                bitbuf >>= 8
                bitcount -= 8

        table: dict[bytes, int] = {bytes([i]): i for i in range(256)}
        next_code = _FIRST
        emit(_CLEAR)
        prefix = b""
        for i in range(len(data)):
            byte = data[i : i + 1]
            candidate = prefix + byte
            if candidate in table:
                prefix = candidate
                continue
            emit(table[prefix])
            if next_code > max_code:
                emit(_CLEAR)
                table = {bytes([j]): j for j in range(256)}
                next_code = _FIRST
                width = 9
            else:
                table[candidate] = next_code
                next_code += 1
                if next_code - 1 == (1 << width) and width < self.max_bits:
                    width += 1
            prefix = byte
        if prefix:
            emit(table[prefix])
        emit(_END)
        if bitcount:
            out.append(bitbuf & 0xFF)
        return bytes(out)

    def decompress(self, data: bytes) -> bytes:
        original_len, pos = read_uvarint(data)
        out = bytearray()
        bitbuf = 0
        bitcount = 0
        width = 9
        max_code = (1 << self.max_bits) - 1

        def read_code() -> int:
            nonlocal bitbuf, bitcount, pos
            while bitcount < width:
                if pos >= len(data):
                    raise CompressionError("lzw: truncated code stream")
                bitbuf |= data[pos] << bitcount
                pos += 1
                bitcount += 8
            code = bitbuf & ((1 << width) - 1)
            bitbuf >>= width
            bitcount -= width
            return code

        table: list[bytes] = [bytes([i]) for i in range(256)] + [b"", b""]
        prev: bytes | None = None
        while True:
            code = read_code()
            if code == _END:
                break
            if code == _CLEAR:
                table = [bytes([i]) for i in range(256)] + [b"", b""]
                width = 9
                prev = None
                continue
            if code < len(table):
                entry = table[code]
            elif code == len(table) and prev is not None:
                entry = prev + prev[:1]  # the KwKwK special case
            else:
                raise CompressionError(f"lzw: invalid code {code}")
            out.extend(entry)
            if prev is not None and len(table) <= max_code:
                table.append(prev + entry[:1])
                # Encoder widens after assigning code (1 << width); mirror it.
                if len(table) == (1 << width) and width < self.max_bits:
                    width += 1
            prev = entry
        if len(out) != original_len:
            raise CompressionError(
                f"lzw: expected {original_len} bytes, decoded {len(out)}"
            )
        return bytes(out)
