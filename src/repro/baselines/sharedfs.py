"""The shared-parallel-file-system baseline (Lustre in the paper).

Analytic aggregate models of the two services a Lustre deployment
serializes on under DL workloads:

- the **metadata server** (MDS): a single service point through which
  every ``stat``/``readdir``/``open`` passes — §II-B1's startup storm
  and the cause of the paper's 512-node non-start;
- the **object storage targets** (OSTs): an aggregate bandwidth pool
  shared by every concurrent reader.

The DES variant (with explicit queueing) lives in
:mod:`repro.training.simulate`; these closed-form versions are what the
Table III and Figure 9 benchmarks sweep, and they agree with the DES in
the saturated regime (both are validated against each other in the
integration tests).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError
from repro.simnet.devices import StorageModel, lustre
from repro.util.units import GB


@dataclass(frozen=True)
class SharedFileSystem:
    """A Lustre-like deployment's aggregate service capacities."""

    client_model: StorageModel  # single-client path (Table III row)
    mds_ops_per_second: float = 2500.0  # one MDS's service rate
    aggregate_bandwidth: float = 80 * GB  # total OST streaming rate
    max_streams: int = 64  # concurrent full-rate client streams

    def __post_init__(self) -> None:
        if self.mds_ops_per_second <= 0 or self.aggregate_bandwidth <= 0:
            raise SimulationError("shared FS service rates must be positive")

    # -- startup (metadata) -------------------------------------------------

    def startup_seconds(self, io_processes: int, num_files: int,
                        num_dirs: int = 1) -> float:
        """§II-B1: every I/O process enumerates the full dataset —
        ``procs × (files stats + dirs readdirs)`` through one MDS."""
        if io_processes < 1 or num_files < 1:
            raise SimulationError("need >= 1 process and file")
        total_ops = io_processes * (num_files + num_dirs)
        return total_ops / self.mds_ops_per_second

    # -- steady-state reads ---------------------------------------------------

    def batch_read_seconds(
        self, readers: int, files_per_reader: int, file_bytes: int
    ) -> float:
        """Time for ``readers`` concurrent clients to each read their
        batch: per-file MDS open + the slower of the per-client path and
        the aggregate-bandwidth share."""
        if readers < 1 or files_per_reader < 1:
            raise SimulationError("need >= 1 reader and file")
        opens = readers * files_per_reader / self.mds_ops_per_second
        per_client = files_per_reader * self.client_model.read_time(file_bytes)
        total_bytes = readers * files_per_reader * file_bytes
        aggregate = total_bytes / self.aggregate_bandwidth
        return opens + max(per_client, aggregate)

    def effective_files_per_second(
        self, readers: int, files_per_reader: int, file_bytes: int
    ) -> float:
        """Aggregate delivered throughput under contention."""
        t = self.batch_read_seconds(readers, files_per_reader, file_bytes)
        return readers * files_per_reader / t


def default_lustre() -> SharedFileSystem:
    """The deployment the paper measured (Table III's Lustre row for the
    single-client path; production-multi-tenant aggregates)."""
    return SharedFileSystem(client_model=lustre())
