"""Canonical Huffman coding (the paper's §II-C "encoding" family).

A pure entropy coder: no dictionary, so it compresses byte-skewed data
(text, filtered numeric arrays) but not data with repeated substrings.
In the suite it provides mid-ratio/mid-cost points and composes with the
delta/bitshuffle filters, which skew byte distributions.

Format: ``uvarint(original_len)``, 256 nibble-packed code lengths
(128 bytes, each length 0..15), then the MSB-first packed bit stream.
Canonical code assignment makes the table self-describing.
"""

from __future__ import annotations

import heapq
from collections import Counter

import numpy as np

from repro.compressors.base import Codec, read_uvarint, write_uvarint
from repro.errors import CompressionError

_MAX_CODE_LEN = 15


def _code_lengths(freqs: Counter) -> list[int]:
    """Huffman code lengths per symbol, capped at ``_MAX_CODE_LEN``.

    Uses the standard heap construction; if the tree exceeds the cap
    (possible with > ~2.7M highly skewed bytes), lengths are flattened
    with the package-merge-free heuristic of re-weighting and retrying.
    """
    symbols = sorted(freqs)
    if len(symbols) == 1:
        return [1 if s == symbols[0] else 0 for s in range(256)]
    weights = {s: freqs[s] for s in symbols}
    for _attempt in range(8):
        # heap items: (weight, tiebreak, {symbol: depth})
        heap = [(w, s, {s: 0}) for s, w in weights.items()]
        heapq.heapify(heap)
        counter = 256  # tiebreak ids above symbol range
        while len(heap) > 1:
            w1, _, d1 = heapq.heappop(heap)
            w2, _, d2 = heapq.heappop(heap)
            merged = {s: d + 1 for s, d in d1.items()}
            merged.update({s: d + 1 for s, d in d2.items()})
            heapq.heappush(heap, (w1 + w2, counter, merged))
            counter += 1
        depths = heap[0][2]
        if max(depths.values()) <= _MAX_CODE_LEN:
            lengths = [0] * 256
            for s, d in depths.items():
                lengths[s] = d
            return lengths
        # Flatten the distribution and retry: raising small weights
        # shortens the deepest codes.
        weights = {s: (w + 1) // 2 + 1 for s, w in weights.items()}
    raise CompressionError("huffman: could not cap code lengths")


def _canonical_codes(lengths: list[int]) -> list[tuple[int, int]]:
    """Assign canonical codes; returns ``[(code, length)]`` per symbol."""
    order = sorted(
        (s for s in range(256) if lengths[s]), key=lambda s: (lengths[s], s)
    )
    codes: list[tuple[int, int]] = [(0, 0)] * 256
    code = 0
    prev_len = 0
    for s in order:
        code <<= lengths[s] - prev_len
        codes[s] = (code, lengths[s])
        code += 1
        prev_len = lengths[s]
    return codes


class HuffmanCodec(Codec):
    """Order-0 canonical Huffman coder."""

    name = "huffman"

    def compress(self, data: bytes) -> bytes:
        out = bytearray(write_uvarint(len(data)))
        if not data:
            out.extend(b"\x00" * 128)
            return bytes(out)
        freqs = Counter(data)
        lengths = _code_lengths(freqs)
        codes = _canonical_codes(lengths)
        # Nibble-pack the 256 lengths.
        for i in range(0, 256, 2):
            out.append((lengths[i] << 4) | lengths[i + 1])
        # Encode via per-byte code/length lookup, accumulating MSB-first.
        code_arr = [c for c, _ in codes]
        len_arr = [l for _, l in codes]
        bitbuf = 0
        bitcount = 0
        for byte in data:
            bitbuf = (bitbuf << len_arr[byte]) | code_arr[byte]
            bitcount += len_arr[byte]
            while bitcount >= 8:
                bitcount -= 8
                out.append((bitbuf >> bitcount) & 0xFF)
        if bitcount:
            out.append((bitbuf << (8 - bitcount)) & 0xFF)
        return bytes(out)

    def decompress(self, data: bytes) -> bytes:
        original_len, pos = read_uvarint(data)
        if pos + 128 > len(data):
            raise CompressionError("huffman: truncated length table")
        lengths = []
        for i in range(128):
            packed = data[pos + i]
            lengths.append(packed >> 4)
            lengths.append(packed & 0x0F)
        pos += 128
        if original_len == 0:
            return b""
        codes = _canonical_codes(lengths)
        # Invert to (length, code) → symbol for the decode loop.
        decode: dict[tuple[int, int], int] = {}
        for sym in range(256):
            code, length = codes[sym]
            if length:
                decode[(length, code)] = sym
        if not decode:
            raise CompressionError("huffman: empty code table")
        # Bit-unpack the remainder once, then walk it.
        bits = np.unpackbits(np.frombuffer(data, dtype=np.uint8, offset=pos))
        out = bytearray()
        acc = 0
        acc_len = 0
        max_len = max(l for l, _ in decode)
        for bit in bits:
            acc = (acc << 1) | int(bit)
            acc_len += 1
            sym = decode.get((acc_len, acc))
            if sym is not None:
                out.append(sym)
                if len(out) == original_len:
                    return bytes(out)
                acc = 0
                acc_len = 0
            elif acc_len > max_len:
                raise CompressionError("huffman: invalid bit sequence")
        raise CompressionError(
            f"huffman: expected {original_len} bytes, decoded {len(out)}"
        )
